#include "src/sched/depgraph.hh"

#include <algorithm>

#include "src/support/logging.hh"

namespace eel::sched {

namespace {

struct ReadAcc
{
    isa::RegId reg;
    int cycle;
};

struct WriteAcc
{
    isa::RegId reg;
    int cycle;       ///< writeback pipeline cycle
    int ready;       ///< cycle the value was computed in
};

/**
 * Join the ISA's authoritative def/use sets with the machine model's
 * per-access timing. Accesses the description does not mention get
 * conservative defaults (read in cycle 1; value ready one cycle
 * before the end of the pipeline).
 */
struct Accesses
{
    std::vector<ReadAcc> reads;
    std::vector<WriteAcc> writes;

    Accesses(const isa::Instruction &inst, const machine::Variant &v)
    {
        auto readCycleOf = [&](isa::RegId r) -> int {
            for (const machine::RegAccess &a : v.reads) {
                if (a.reg(inst) == r ||
                    (a.pair && a.pairReg(inst) == r))
                    return a.cycle;
            }
            return 1;
        };
        auto writeOf = [&](isa::RegId r) -> std::pair<int, int> {
            for (const machine::RegAccess &a : v.writes) {
                if (a.reg(inst) == r ||
                    (a.pair && a.pairReg(inst) == r))
                    return {a.cycle, a.valueReady};
            }
            int wb = static_cast<int>(v.latency) - 1;
            return {wb, std::max(0, wb - 1)};
        };
        for (const auto &acc : inst.uses()) {
            if (acc.reg.tracked())
                reads.push_back(ReadAcc{acc.reg,
                                        readCycleOf(acc.reg)});
        }
        for (const auto &acc : inst.defs()) {
            if (acc.reg.tracked()) {
                auto [wb, ready] = writeOf(acc.reg);
                writes.push_back(WriteAcc{acc.reg, wb, ready});
            }
        }
    }
};

/** Byte range a memory instruction may touch (for oracle checks). */
struct MemRange
{
    int32_t tag;
    int64_t lo;
    int64_t hi;
};

MemRange
memRange(const InstRef &ref)
{
    int bytes = ref.inst.info().memBytes;
    return MemRange{ref.memTag, ref.memOff, ref.memOff + bytes};
}

} // namespace

DepGraph::DepGraph(std::span<const InstRef> insts,
                   const machine::MachineModel &model,
                   AliasPolicy alias)
    : n(insts.size()), out(n), inDegree(n, 0), selfLatency(n, 1)
{
    std::vector<Accesses> acc;
    acc.reserve(n);
    for (const InstRef &r : insts) {
        const machine::Variant &v = model.variant(r.inst);
        acc.emplace_back(r.inst, v);
        selfLatency[acc.size() - 1] = static_cast<int>(v.latency);
    }

    // lastWrite[reg] / readers-since-last-write, per flat register id.
    std::vector<int> lastWrite(isa::numRegIds, -1);
    std::vector<std::vector<uint32_t>> readersSince(isa::numRegIds);

    auto mayAlias = [&](const InstRef &a, const InstRef &b) {
        switch (alias) {
          case AliasPolicy::Conservative:
            return true;
          case AliasPolicy::SeparateInstrumentation: {
            if (a.isInstrumentation != b.isInstrumentation)
                return false;
            // Instrumentation the editor generated itself tags its
            // counter accesses with the counter address; unlike
            // original code, the editor KNOWS these never collide,
            // which is what lets superblock scheduling hoist one
            // block's counter load past another block's store.
            if (a.isInstrumentation && a.memTag >= 0 &&
                b.memTag >= 0) {
                if (a.memTag != b.memTag)
                    return false;
                MemRange ra = memRange(a), rb = memRange(b);
                return ra.lo < rb.hi && rb.lo < ra.hi;
            }
            return true;
          }
          case AliasPolicy::Oracle: {
            if (a.memTag < 0 || b.memTag < 0)
                return true;
            if (a.memTag != b.memTag)
                return false;
            MemRange ra = memRange(a), rb = memRange(b);
            return ra.lo < rb.hi && rb.lo < ra.hi;
          }
        }
        return true;
    };

    std::vector<uint32_t> priorLoads, priorStores;
    int lastBarrier = -1;

    for (uint32_t j = 0; j < n; ++j) {
        const InstRef &ref = insts[j];
        const Accesses &aj = acc[j];

        // Register dependences.
        for (const ReadAcc &rd : aj.reads) {
            unsigned f = rd.reg.flat();
            if (lastWrite[f] >= 0) {
                uint32_t i = static_cast<uint32_t>(lastWrite[f]);
                // RAW: reader's read cycle must not precede the
                // producer's value availability.
                int dist = 0;
                for (const WriteAcc &w : acc[i].writes)
                    if (w.reg == rd.reg)
                        dist = std::max(dist,
                                        w.ready + 1 - rd.cycle);
                addEdge(i, j, DepKind::Raw,
                        static_cast<int16_t>(std::max(dist, 0)));
            }
            readersSince[f].push_back(j);
        }
        for (const WriteAcc &wr : aj.writes) {
            unsigned f = wr.reg.flat();
            for (uint32_t i : readersSince[f]) {
                if (i == j)
                    continue;
                int rc = 1;
                for (const ReadAcc &r : acc[i].reads)
                    if (r.reg == wr.reg)
                        rc = r.cycle;
                addEdge(i, j, DepKind::War,
                        static_cast<int16_t>(
                            std::max(0, rc - wr.cycle)));
            }
            if (lastWrite[f] >= 0) {
                uint32_t i = static_cast<uint32_t>(lastWrite[f]);
                int wc = 1;
                for (const WriteAcc &w : acc[i].writes)
                    if (w.reg == wr.reg)
                        wc = w.cycle;
                addEdge(i, j, DepKind::Waw,
                        static_cast<int16_t>(
                            std::max(0, wc - wr.cycle + 1)));
            }
        }
        for (const WriteAcc &wr : aj.writes) {
            unsigned f = wr.reg.flat();
            lastWrite[f] = static_cast<int>(j);
            readersSince[f].clear();
        }

        // Memory dependences.
        if (ref.inst.isStore()) {
            for (uint32_t i : priorLoads)
                if (mayAlias(insts[i], ref))
                    addEdge(i, j, DepKind::Mem, 0);
            for (uint32_t i : priorStores)
                if (mayAlias(insts[i], ref))
                    addEdge(i, j, DepKind::Mem, 1);
            priorStores.push_back(j);
        } else if (ref.inst.isLoad()) {
            for (uint32_t i : priorStores)
                if (mayAlias(insts[i], ref))
                    addEdge(i, j, DepKind::Mem, 1);
            priorLoads.push_back(j);
        }

        // Barriers order against everything on both sides.
        if (ref.inst.isBarrier()) {
            for (uint32_t i = 0; i < j; ++i)
                addEdge(i, j, DepKind::Barrier, 0);
            lastBarrier = static_cast<int>(j);
        } else if (lastBarrier >= 0) {
            addEdge(static_cast<uint32_t>(lastBarrier), j,
                    DepKind::Barrier, 0);
        }
    }
}

void
DepGraph::addEdge(uint32_t from, uint32_t to, DepKind kind,
                  int16_t min_dist)
{
    if (from == to)
        return;
    // Avoid exact duplicates from the same builder step.
    for (uint32_t e : out[from]) {
        DepEdge &ex = edgeList[e];
        if (ex.to == to) {
            ex.minDist = std::max(ex.minDist, min_dist);
            return;
        }
    }
    edgeList.push_back(DepEdge{from, to, kind, min_dist});
    out[from].push_back(static_cast<uint32_t>(edgeList.size() - 1));
    ++inDegree[to];
}

bool
DepGraph::hasEdge(size_t i, size_t j) const
{
    for (uint32_t e : out[i])
        if (edgeList[e].to == j)
            return true;
    return false;
}

std::vector<int>
DepGraph::distanceToEnd() const
{
    // Edges always point forward in program order, so a reverse
    // index walk is a reverse topological order.
    std::vector<int> dist(n, 0);
    for (size_t i = n; i-- > 0;) {
        int d = selfLatency[i];
        for (uint32_t e : out[i]) {
            const DepEdge &edge = edgeList[e];
            d = std::max(d, edge.minDist + dist[edge.to]);
        }
        dist[i] = d;
    }
    return dist;
}

} // namespace eel::sched
