/**
 * @file
 * Dependence graph over the instructions of one basic block, with
 * the paper's memory-aliasing policy (§4): loads and stores from the
 * original code are conservatively assumed to access the same
 * address; instrumentation loads and stores likewise alias each
 * other but are assumed NOT to conflict with original accesses
 * (an option restores full conservatism for constrained
 * instrumentation).
 */

#ifndef EEL_SCHED_DEPGRAPH_HH
#define EEL_SCHED_DEPGRAPH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/model.hh"
#include "src/sched/inst_ref.hh"

namespace eel::sched {

/** How memory dependences are derived. */
enum class AliasPolicy : uint8_t {
    /**
     * The paper's model: all original memory operations alias; all
     * instrumentation memory operations alias each other but not
     * the original ones.
     */
    SeparateInstrumentation,
    /** Everything aliases everything (the restrictive option, §4). */
    Conservative,
    /**
     * Oracle disambiguation through InstRef::memTag, as an
     * optimizing compiler with full alias analysis would have it.
     * Used by the workload generator's pre-scheduling pass.
     */
    Oracle,
};

enum class DepKind : uint8_t { Raw, War, Waw, Mem, Barrier };

struct DepEdge
{
    uint32_t from;
    uint32_t to;
    DepKind kind;
    /** Minimum issue-cycle separation implied (may be 0). */
    int16_t minDist;
};

/**
 * Dependence graph over a straight-line instruction sequence.
 * Indices refer to positions in the input span.
 */
class DepGraph
{
  public:
    DepGraph(std::span<const InstRef> insts,
             const machine::MachineModel &model, AliasPolicy alias);

    size_t size() const { return n; }
    const std::vector<DepEdge> &edges() const { return edgeList; }
    /** Outgoing edge indices of node i. */
    const std::vector<uint32_t> &succs(size_t i) const
    {
        return out[i];
    }
    /** Number of incoming edges of node i. */
    unsigned numPreds(size_t i) const { return inDegree[i]; }

    /** True if i has a (direct) edge to j. */
    bool hasEdge(size_t i, size_t j) const;

    /**
     * The backward pass of the paper's two-pass list scheduler: the
     * length in cycles of the dependence chain from each instruction
     * to the end of the block, considering only the stalls required
     * between data dependent instructions (§4).
     */
    std::vector<int> distanceToEnd() const;

  private:
    void addEdge(uint32_t from, uint32_t to, DepKind kind,
                 int16_t min_dist);

    size_t n;
    std::vector<DepEdge> edgeList;
    std::vector<std::vector<uint32_t>> out;
    std::vector<unsigned> inDegree;
    std::vector<int> selfLatency;
};

} // namespace eel::sched

#endif // EEL_SCHED_DEPGRAPH_HH
