/**
 * @file
 * The executable editor — the "Insert instrumentation / Schedule /
 * new executable" path of the paper's Figure 3. A tool selects and
 * places instrumentation snippets per basic block; the editor lays
 * out a new text section, optionally scheduling each block's
 * original and instrumentation instructions together, and patches
 * every PC-relative branch and call for the new layout.
 */

#ifndef EEL_EEL_EDITOR_HH
#define EEL_EEL_EDITOR_HH

#include <map>
#include <utility>

#include "src/eel/cfg.hh"
#include "src/sched/pipeline.hh"
#include "src/sched/scheduler.hh"
#include "src/sched/superblock.hh"

namespace eel::support {
class ThreadPool;
}

namespace eel::edit {

class Liveness;

/**
 * Instrumentation placement. Three placement kinds:
 *
 *  - block snippets: prepended to a block, executed every time the
 *    block runs (and scheduled into it when scheduling is on);
 *  - fall-through edge snippets: laid out between a block and its
 *    fall-through successor, executed only when control falls
 *    through (branch targets skip over them);
 *  - taken edge snippets: materialized as a trampoline block — the
 *    branch is retargeted to [snippet; ba original-target; delay] —
 *    executed only when the branch is taken.
 *
 * Edge placements are what Ball-Larus style edge profiling needs
 * (qpt::makeEdgePlan).
 */
struct InstrumentationPlan
{
    std::map<std::pair<size_t, size_t>, sched::InstSeq> snippets;
    /** (routine, from-block) -> code on the fall-through edge. */
    std::map<std::pair<size_t, size_t>, sched::InstSeq> fallEdges;
    /** (routine, from-block) -> code on the taken edge. */
    std::map<std::pair<size_t, size_t>, sched::InstSeq> takenEdges;

    void
    add(size_t routine, size_t block, sched::InstSeq code)
    {
        snippets.emplace(std::make_pair(routine, block),
                         std::move(code));
    }
    void
    addFallEdge(size_t routine, size_t from, sched::InstSeq code)
    {
        fallEdges.emplace(std::make_pair(routine, from),
                          std::move(code));
    }
    void
    addTakenEdge(size_t routine, size_t from, sched::InstSeq code)
    {
        takenEdges.emplace(std::make_pair(routine, from),
                           std::move(code));
    }
    const sched::InstSeq *
    find(size_t routine, size_t block) const
    {
        auto it = snippets.find({routine, block});
        return it == snippets.end() ? nullptr : &it->second;
    }
};

/** How far the scheduler's candidate motion reaches. */
enum class SchedScope : uint8_t {
    /** The paper's scheduler: one basic block at a time (§4). */
    Local,
    /**
     * Profile-guided superblock scheduling: form traces along the
     * hottest edges (tail-duplicating side-entranced suffixes) and
     * schedule each trace as one region with speculation checked
     * against liveness. Requires EditOptions::edgeCounts. Blocks
     * outside any trace fall back to local scheduling.
     */
    Superblock,
    /**
     * Everything Superblock does, plus modulo scheduling of hot
     * innermost single-block loops (sched::findPipelineLoops): a
     * pipelined loop is emitted as a prologue at the old header
     * address followed by a rotated kernel whose backedge is
     * re-targeted at the kernel itself, or as a two-copy
     * unroll-and-schedule block when rotation cannot meet the II
     * bound. Requires EditOptions::edgeCounts.
     */
    Pipeline,
};

struct EditOptions
{
    /**
     * Schedule each block (original + instrumentation together)
     * with EEL's list scheduler. When false, instrumentation is
     * inserted at block entry unscheduled — the paper's "Inst."
     * configuration.
     */
    bool schedule = false;
    /** Machine model the scheduler targets (required if schedule). */
    const machine::MachineModel *model = nullptr;
    sched::SchedOptions sched;
    /** Cross-block scheduling mode (only meaningful if schedule). */
    SchedScope scope = SchedScope::Local;
    sched::SuperblockOptions superblock;
    /** Modulo-scheduling knobs (only meaningful if scope ==
     *  Pipeline). */
    sched::PipelineOptions pipeline;
    /**
     * Edge profile for trace formation, indexed like `routines`
     * (qpt::exportEdgeCounts). Required when scope == Superblock.
     * Superblock mode is incompatible with edge instrumentation
     * (fallEdges/takenEdges) — the profile run comes first.
     */
    const std::vector<RoutineEdgeCounts> *edgeCounts = nullptr;
    /**
     * Precomputed per-routine liveness, indexed like `routines`.
     * When set, superblock scheduling reuses it instead of re-running
     * the analysis per rewrite — one analysis pass can then serve a
     * whole batch of variants (edit::BatchRewriter).
     */
    const std::vector<Liveness> *liveness = nullptr;
    /**
     * When set, block contents are built (and scheduled) for all
     * routines in parallel on this pool. Layout and emission stay
     * serial, so the output is identical to the single-threaded
     * rewrite.
     */
    support::ThreadPool *pool = nullptr;
};

/**
 * Produce the edited executable. The routines must have been built
 * from `in` (buildRoutines). Data, bss, and non-function symbols are
 * preserved; text is re-laid out block by block in original order.
 */
exe::Executable rewrite(const exe::Executable &in,
                        const std::vector<Routine> &routines,
                        const InstrumentationPlan &plan,
                        const EditOptions &opts);

} // namespace eel::edit

#endif // EEL_EEL_EDITOR_HH
