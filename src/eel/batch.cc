#include "src/eel/batch.hh"

#include "src/obs/trace.hh"
#include "src/sim/emulator.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"

namespace eel::edit {

namespace {

/** Sever COW sharing: give the section private freshly-built pages. */
template <class T>
void
unshare(exe::CowSection<T> &s)
{
    std::vector<T> f = s.flat();
    s.clear();
    s.append(f.data(), f.size());
}

bool
wants(const std::vector<VariantKind> &kinds, VariantKind k)
{
    for (VariantKind v : kinds)
        if (v == k)
            return true;
    return false;
}

const char *
kindName(VariantKind k)
{
    switch (k) {
      case VariantKind::Identity:     return "identity";
      case VariantKind::SlowProfile:  return "slow_profile";
      case VariantKind::EdgeProfile:  return "edge_profile";
      case VariantKind::Sched:        return "sched";
      case VariantKind::Superblock:   return "superblock";
      case VariantKind::Pipeline:     return "pipeline";
    }
    return "unknown";
}

} // namespace

BatchRewriter::BatchRewriter(const exe::Executable &in,
                             const BatchOptions &opts)
    : in(in), opts(opts), routines(buildRoutines(in))
{}

BatchResult
BatchRewriter::rewriteAll(const std::vector<VariantKind> &kinds)
{
    bool needCounters = wants(kinds, VariantKind::SlowProfile) ||
                        wants(kinds, VariantKind::Sched) ||
                        wants(kinds, VariantKind::Superblock) ||
                        wants(kinds, VariantKind::Pipeline);
    bool needEdges = wants(kinds, VariantKind::EdgeProfile) ||
                     wants(kinds, VariantKind::Superblock) ||
                     wants(kinds, VariantKind::Pipeline);
    bool needSched = wants(kinds, VariantKind::Sched) ||
                     wants(kinds, VariantKind::Superblock) ||
                     wants(kinds, VariantKind::Pipeline);
    if (needSched && !opts.model)
        fatal("batch: Sched/Superblock variants need a machine model");

    BatchResult res;
    res.routines = routines;

    // Analysis pass. Everything here happens once regardless of how
    // many variants the batch stamps below.
    //
    // The edge profile lives on its own copy of the input: its
    // counter array must not land in the work image's bss, or every
    // counter-carrying variant's text would shift relative to the
    // single-image flow.
    exe::Executable eprof;
    if (needEdges) {
        obs::Span span("batch.edge_profile_run");
        exe::Executable eprof_x = in;
        res.edgePlan =
            qpt::makeEdgePlan(eprof_x, routines, opts.profile);
        EditOptions plain;
        plain.pool = opts.pool;
        eprof = rewrite(eprof_x, routines, res.edgePlan.plan, plain);
        sim::Emulator emu(eprof);
        sim::RunResult r = emu.run();
        if (!r.exited)
            fatal("batch: edge-profiling run hit the instruction cap");
        res.edgeCounts = qpt::exportEdgeCounts(
            qpt::readEdgeCounts(emu, res.edgePlan, routines),
            res.edgePlan, routines);
    }

    res.work = in;
    if (needCounters) {
        obs::Span span("batch.analysis");
        res.profilePlan =
            qpt::makePlan(res.work, routines, opts.profile);
    }

    std::vector<Liveness> live;
    if (wants(kinds, VariantKind::Superblock) ||
        wants(kinds, VariantKind::Pipeline)) {
        obs::Span span("batch.liveness");
        live.reserve(routines.size());
        for (const Routine &r : routines)
            live.emplace_back(r);
    }

    // Stamp pass: one rewrite per requested kind, in parallel. Every
    // variant reads the shared analysis; none mutates it.
    EditOptions plain;
    plain.pool = opts.pool;

    EditOptions sched = plain;
    sched.schedule = true;
    sched.model = opts.model;
    sched.sched = opts.sched;

    EditOptions sblock = sched;
    sblock.scope = SchedScope::Superblock;
    sblock.superblock = opts.superblock;
    sblock.edgeCounts = &res.edgeCounts;
    sblock.liveness = &live;

    EditOptions pipe = sblock;
    pipe.scope = SchedScope::Pipeline;
    pipe.pipeline = opts.pipeline;

    res.variants.resize(kinds.size());
    auto stamp = [&](size_t k) {
        obs::Span span(std::string("batch.stamp.") +
                       kindName(kinds[k]));
        BatchVariant &v = res.variants[k];
        v.kind = kinds[k];
        switch (kinds[k]) {
          case VariantKind::Identity:
            v.image = rewrite(in, routines, InstrumentationPlan{},
                              plain);
            break;
          case VariantKind::SlowProfile:
            v.image = rewrite(res.work, routines,
                              res.profilePlan.plan, plain);
            break;
          case VariantKind::EdgeProfile:
            v.image = eprof;
            break;
          case VariantKind::Sched:
            v.image = rewrite(res.work, routines,
                              res.profilePlan.plan, sched);
            break;
          case VariantKind::Superblock:
            v.image = rewrite(res.work, routines,
                              res.profilePlan.plan, sblock);
            break;
          case VariantKind::Pipeline:
            v.image = rewrite(res.work, routines,
                              res.profilePlan.plan, pipe);
            break;
        }
    };
    if (opts.pool) {
        opts.pool->parallelFor(kinds.size(), stamp);
    } else {
        for (size_t k = 0; k < kinds.size(); ++k)
            stamp(k);
    }

    if (opts.store) {
        obs::Span span("batch.intern");
        opts.store->intern(res.work);
        for (BatchVariant &v : res.variants)
            opts.store->intern(v.image);
    }
    return res;
}

BatchResult
eagerRewriteAll(const exe::Executable &in,
                const std::vector<VariantKind> &kinds,
                const BatchOptions &opts)
{
    BatchOptions eopts = opts;
    eopts.store = nullptr;  // eager images never intern
    BatchRewriter rw(in, eopts);
    BatchResult res = rw.rewriteAll(kinds);
    unshare(res.work.text);
    unshare(res.work.data);
    for (BatchVariant &v : res.variants) {
        unshare(v.image.text);
        unshare(v.image.data);
    }
    return res;
}

} // namespace eel::edit
