#include "src/eel/cfg.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/obs/trace.hh"
#include "src/support/logging.hh"

namespace eel::edit {

namespace {

/** One routine's worth of decoded instructions. */
struct Decoded
{
    uint32_t base;
    std::vector<isa::Instruction> insts;

    const isa::Instruction &
    at(uint32_t addr) const
    {
        return insts[(addr - base) / 4];
    }
    bool
    contains(uint32_t addr) const
    {
        return addr >= base && addr < base + 4 * insts.size();
    }
    uint32_t end() const
    {
        return base + 4 * static_cast<uint32_t>(insts.size());
    }
};

uint32_t
ctiTarget(const isa::Instruction &inst, uint32_t pc)
{
    return pc + 4 * static_cast<uint32_t>(inst.disp);
}

Routine
buildOne(const exe::Executable &x, const exe::Symbol &fn)
{
    Routine r;
    r.name = fn.name;
    r.entry = fn.addr;
    r.size = fn.size;

    Decoded d;
    d.base = fn.addr;
    for (uint32_t a = fn.addr; a < fn.addr + fn.size; a += 4) {
        if (!x.inText(a))
            fatal("cfg: routine '%s' extends outside text",
                  fn.name.c_str());
        isa::Instruction inst = isa::decode(x.word(a));
        if (inst.op == isa::Op::Invalid)
            fatal("cfg: undecodable instruction at 0x%x in '%s'",
                  a, fn.name.c_str());
        d.insts.push_back(inst);
    }

    // Pass 1: leaders and delay-slot ownership.
    std::set<uint32_t> leaders;
    std::set<uint32_t> delaySlots;
    leaders.insert(fn.addr);
    for (uint32_t a = fn.addr; a < d.end(); a += 4) {
        const isa::Instruction &inst = d.at(a);
        if (!inst.isCti())
            continue;
        uint32_t delay = a + 4;
        if (delay >= d.end())
            fatal("cfg: CTI at 0x%x in '%s' has no delay slot", a,
                  fn.name.c_str());
        if (d.at(delay).isCti())
            fatal("cfg: CTI in delay slot at 0x%x in '%s'", delay,
                  fn.name.c_str());
        delaySlots.insert(delay);
        if (delay + 4 < d.end())
            leaders.insert(delay + 4);
        if (inst.isBranch()) {
            uint32_t target = ctiTarget(inst, a);
            if (!d.contains(target))
                fatal("cfg: branch at 0x%x in '%s' escapes the "
                      "routine (target 0x%x)", a, fn.name.c_str(),
                      target);
            leaders.insert(target);
        }
    }
    for (uint32_t a : delaySlots)
        if (leaders.count(a))
            fatal("cfg: branch into a delay slot at 0x%x in '%s'", a,
                  fn.name.c_str());

    // Pass 2: carve blocks.
    std::map<uint32_t, int> blockOf;  // leader addr -> block id
    std::vector<uint32_t> sorted(leaders.begin(), leaders.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
        Block b;
        b.id = static_cast<uint32_t>(i);
        b.startAddr = sorted[i];
        blockOf[sorted[i]] = static_cast<int>(i);
        r.blocks.push_back(std::move(b));
    }

    for (size_t i = 0; i < sorted.size(); ++i) {
        Block &b = r.blocks[i];
        uint32_t limit = i + 1 < sorted.size() ? sorted[i + 1]
                                               : d.end();
        uint32_t a = b.startAddr;
        while (a < limit) {
            const isa::Instruction &inst = d.at(a);
            sched::InstRef ref;
            ref.inst = inst;
            ref.origAddr = a;
            b.insts.push_back(ref);
            if (inst.isCti()) {
                b.hasCti = true;
                sched::InstRef delay;
                delay.inst = d.at(a + 4);
                delay.origAddr = a + 4;
                b.insts.push_back(delay);
                a += 8;
                if (a < limit)
                    fatal("cfg: unreachable code after CTI at 0x%x "
                          "in '%s'", a, fn.name.c_str());
                break;
            }
            a += 4;
        }

        // Successors.
        uint32_t next = a;
        bool has_next = next < d.end();
        if (!b.hasCti) {
            if (!has_next)
                fatal("cfg: routine '%s' falls off the end",
                      fn.name.c_str());
            b.fallSucc = blockOf.at(next);
            continue;
        }
        const isa::Instruction &cti = b.cti();
        uint32_t cti_addr = b.startAddr +
                            4 * static_cast<uint32_t>(b.ctiIndex());
        if (cti.isBranch()) {
            uint32_t target = ctiTarget(cti, cti_addr);
            if (!cti.isNeverBranch())
                b.takenSucc = blockOf.at(target);
            if (cti.fallsThrough() || cti.isNeverBranch()) {
                if (!has_next)
                    fatal("cfg: conditional branch at routine end in "
                          "'%s'", fn.name.c_str());
                b.fallSucc = blockOf.at(next);
            }
        } else if (cti.op == isa::Op::Call) {
            b.callTarget = ctiTarget(cti, cti_addr);
            if (has_next)
                b.fallSucc = blockOf.at(next);
        } else if (cti.op == isa::Op::Jmpl) {
            b.endsInReturn = cti.isReturn();
            if (cti.isCall()) {
                // Indirect call: returns to the following block.
                if (has_next)
                    b.fallSucc = blockOf.at(next);
            }
            // Other indirect jumps have no statically known
            // successor; returns leave the routine.
        }
    }

    for (const Block &b : r.blocks) {
        if (b.takenSucc >= 0)
            r.blocks[b.takenSucc].preds.push_back(b.id);
        if (b.fallSucc >= 0 && b.fallSucc != b.takenSucc)
            r.blocks[b.fallSucc].preds.push_back(b.id);
    }
    return r;
}

} // namespace

uint32_t
splitEdge(Routine &r, uint32_t from, RoutineEdgeCounts *counts)
{
    if (from >= r.blocks.size())
        fatal("splitEdge: block %u out of range in '%s'", from,
              r.name.c_str());
    Block &b = r.blocks[from];
    if (b.fallSucc < 0)
        fatal("splitEdge: block %u of '%s' has no fall-through edge",
              from, r.name.c_str());
    if (b.fallSucc == b.takenSucc)
        fatal("splitEdge: block %u of '%s' branches to its own "
              "fall-through; the edges cannot be split apart", from,
              r.name.c_str());
    int succ = b.fallSucc;

    Block mid;
    mid.id = static_cast<uint32_t>(r.blocks.size());
    mid.startAddr = 0;  // synthetic: addressed by the editor, if ever
    mid.fallSucc = succ;
    mid.preds.push_back(from);

    // The successor now sees the new block as its predecessor on
    // this path; a distinct taken edge from `from` keeps its own
    // pred entry.
    for (uint32_t &p : r.blocks[succ].preds)
        if (p == from)
            p = mid.id;

    b.fallSucc = static_cast<int>(mid.id);
    uint32_t id = mid.id;
    r.blocks.push_back(std::move(mid));

    if (counts) {
        // The split edge's count survives on both halves: the count
        // of from -> succ is unchanged on from -> mid, and mid's own
        // fall edge carries it on to succ.
        BlockEdgeCounts c;
        c.fall = (*counts)[from].fall;
        c.exec = (*counts)[from].fall;
        counts->push_back(c);
    }
    return id;
}

int
Routine::blockAt(uint32_t addr) const
{
    for (const Block &b : blocks)
        if (b.startAddr == addr)
            return static_cast<int>(b.id);
    return -1;
}

std::vector<Routine>
buildRoutines(const exe::Executable &x)
{
    obs::Span span("edit.cfg");
    std::vector<const exe::Symbol *> fns;
    for (const exe::Symbol &s : x.symbols)
        if (s.isFunc)
            fns.push_back(&s);
    std::sort(fns.begin(), fns.end(),
              [](const exe::Symbol *a, const exe::Symbol *b) {
                  return a->addr < b->addr;
              });

    uint32_t covered = exe::textBase;
    std::vector<Routine> out;
    for (const exe::Symbol *fn : fns) {
        if (fn->addr != covered)
            fatal("cfg: text gap before routine '%s' (0x%x vs 0x%x)",
                  fn->name.c_str(), fn->addr, covered);
        out.push_back(buildOne(x, *fn));
        covered = fn->addr + fn->size;
    }
    if (covered != x.textEnd())
        fatal("cfg: %u trailing text bytes not covered by any routine",
              x.textEnd() - covered);
    return out;
}

std::string
dumpRoutine(const Routine &r)
{
    std::ostringstream os;
    os << "routine " << r.name << " @ " << strfmt("0x%x", r.entry)
       << ", " << r.blocks.size() << " blocks\n";
    for (const Block &b : r.blocks) {
        os << strfmt("  block %u @ 0x%x", b.id, b.startAddr);
        if (b.takenSucc >= 0)
            os << " taken->" << b.takenSucc;
        if (b.fallSucc >= 0)
            os << " fall->" << b.fallSucc;
        if (b.callTarget)
            os << strfmt(" calls 0x%x", b.callTarget);
        if (b.endsInReturn)
            os << " returns";
        os << "\n";
        for (const sched::InstRef &ref : b.insts)
            os << "    " << isa::disassemble(ref.inst, ref.origAddr)
               << "\n";
    }
    return os.str();
}

} // namespace eel::edit
