/**
 * @file
 * Routine discovery and control-flow-graph construction — the
 * "Analyze" step of the paper's Figure 3. EEL derives structure from
 * the instructions themselves: no relocation information exists in
 * the executable.
 */

#ifndef EEL_EEL_CFG_HH
#define EEL_EEL_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/exe/executable.hh"
#include "src/sched/inst_ref.hh"

namespace eel::edit {

/**
 * A basic block: straight-line code, optionally terminated by a CTI
 * that owns the following delay-slot instruction. insts holds
 * [body..., cti, delay] in program order.
 */
struct Block
{
    uint32_t id = 0;
    uint32_t startAddr = 0;
    sched::InstSeq insts;
    bool hasCti = false;

    int takenSucc = -1;   ///< block id of the branch target
    int fallSucc = -1;    ///< block id of the fall-through successor
    uint32_t callTarget = 0;  ///< callee entry if the CTI is a call
    bool endsInReturn = false;
    std::vector<uint32_t> preds;

    size_t
    ctiIndex() const
    {
        // [body..., cti, delay]: the CTI is second-to-last.
        return insts.size() - 2;
    }
    const isa::Instruction &
    cti() const
    {
        return insts[ctiIndex()].inst;
    }
};

struct Routine
{
    std::string name;
    uint32_t entry = 0;
    uint32_t size = 0;  ///< bytes of text
    std::vector<Block> blocks;  ///< in address order

    /** Block whose startAddr is addr; -1 if none. */
    int blockAt(uint32_t addr) const;
};

/**
 * Execution counts attached to one block: how often it ran and how
 * often each out-edge was followed, as reconstructed by qpt edge
 * profiling (qpt::exportEdgeCounts). Trace formation consumes these.
 */
struct BlockEdgeCounts
{
    uint64_t fall = 0;   ///< fall-through edge executions
    uint64_t taken = 0;  ///< taken edge executions
    uint64_t exec = 0;   ///< block executions (inflow)
};

/** Indexed by block id within one routine. */
using RoutineEdgeCounts = std::vector<BlockEdgeCounts>;

/**
 * Split the fall-through edge from -> r.blocks[from].fallSucc by
 * inserting a new, empty synthetic block on it. The new block is
 * appended (id == old blocks.size(), startAddr 0 — it has no address
 * until the editor lays it out) and the successor's pred list is
 * rewired. When counts is non-null, the profile count of the split
 * edge stays attached to both surviving halves: from -> new keeps
 * the old fall count, and the new block's own fall edge carries the
 * same count onward, so flow conservation still holds for any later
 * edge instrumentation or trace formation. Returns the new block id.
 */
uint32_t splitEdge(Routine &r, uint32_t from,
                   RoutineEdgeCounts *counts = nullptr);

/**
 * Discover every routine (function symbols) in the executable and
 * build its CFG. Fatal on malformed code: branches into delay slots,
 * branches escaping their routine, text not covered by any function
 * symbol, or undecodable instructions.
 */
std::vector<Routine> buildRoutines(const exe::Executable &x);

/** Render a routine's CFG for debugging / the quickstart example. */
std::string dumpRoutine(const Routine &r);

} // namespace eel::edit

#endif // EEL_EEL_CFG_HH
