/**
 * @file
 * Live-register analysis over a routine's CFG. The original qpt/EEL
 * tools scavenged dead registers for instrumentation instead of
 * permanently reserving scratch registers; this analysis provides
 * the per-block dead set that makes that safe (used by
 * qpt::ProfileOptions::scavengeRegisters).
 *
 * The analysis is a standard backward may-liveness over integer
 * registers, with deliberately conservative boundary conditions: a
 * block that leaves the routine (return or unknown control) is
 * assumed to expose every register, and a call is assumed to read
 * everything a callee could observe. A register reported dead at a
 * block's entry is therefore guaranteed to be overwritten before any
 * use on every path — safe for instrumentation to clobber.
 */

#ifndef EEL_EEL_LIVENESS_HH
#define EEL_EEL_LIVENESS_HH

#include <bitset>
#include <vector>

#include "src/eel/cfg.hh"

namespace eel::edit {

class Liveness
{
  public:
    using RegSet = std::bitset<32>;  ///< integer registers 0-31

    explicit Liveness(const Routine &routine);

    /** May reg be read before written if control enters block b? */
    bool
    liveIn(uint32_t block, uint8_t reg) const
    {
        return liveInSets[block][reg];
    }

    const RegSet &liveInSet(uint32_t block) const
    {
        return liveInSets[block];
    }

    /**
     * Registers safe for instrumentation to clobber at the entry of
     * block b: dead on entry and not in the never-touch set (%g0,
     * the stack/frame pointers, and the link registers).
     */
    RegSet deadAt(uint32_t block) const;

    /**
     * Pick n distinct scavengeable registers at block b into out.
     * Returns the number found (may be < n).
     */
    unsigned pick(uint32_t block, unsigned n, uint8_t *out) const;

  private:
    std::vector<RegSet> liveInSets;
};

} // namespace eel::edit

#endif // EEL_EEL_LIVENESS_HH
