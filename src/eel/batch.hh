/**
 * @file
 * Batch rewriting: one analysis pass, many variants.
 *
 * The single-image flow (bench/common.cc, the qpt tools) rebuilds
 * the CFG, liveness, and profiles for every rewrite of the same
 * binary. BatchRewriter runs that analysis once — buildRoutines, a
 * per-routine Liveness vector, the block-counter plan, and (when a
 * profile-guided variant is requested) one internal edge-profiling
 * run — and then stamps out the requested variants on the thread
 * pool. Because Executable sections are copy-on-write
 * (exe::SectionStore), the variants share every unedited page with
 * the work image and with each other: N variants cost one data
 * section plus N re-laid-out text sections, not N full images.
 *
 * eagerRewriteAll() is the same pipeline with sharing deliberately
 * severed afterwards — every variant holds private pages, like the
 * pre-COW editor did. It exists as the differential baseline: batch
 * output must be byte-identical to eager output (asserted by
 * tests/integration/test_differential_fuzz.cc and perf_pipeline),
 * and the memory gap between the two is the batch win.
 */

#ifndef EEL_EEL_BATCH_HH
#define EEL_EEL_BATCH_HH

#include <vector>

#include "src/eel/editor.hh"
#include "src/eel/liveness.hh"
#include "src/qpt/edge_profiler.hh"
#include "src/qpt/profiler.hh"

namespace eel::edit {

/** The rewrite variants a batch can stamp from one analysis pass. */
enum class VariantKind : uint8_t {
    /** Re-layout with no instrumentation and no scheduling. The text
     *  is byte-identical to the input, so with a SectionStore it
     *  interns onto the input's own pages. */
    Identity,
    /** qpt §4.2 per-block counters, unscheduled ("Inst."). */
    SlowProfile,
    /** Ball-Larus edge counters, unscheduled. */
    EdgeProfile,
    /** Per-block counters scheduled locally ("Sched."). */
    Sched,
    /** Per-block counters under profile-guided superblock
     *  scheduling (uses the internal edge-profile run). */
    Superblock,
    /** Superblock plus modulo scheduling of hot innermost loops
     *  (SchedScope::Pipeline). */
    Pipeline,
};

struct BatchOptions
{
    /** Machine model (required for Sched/Superblock variants). */
    const machine::MachineModel *model = nullptr;
    sched::SchedOptions sched;
    sched::SuperblockOptions superblock;
    sched::PipelineOptions pipeline;
    qpt::ProfileOptions profile;
    /** Variants are stamped in parallel on this pool (and each
     *  rewrite schedules its routines on it); null = serial. */
    support::ThreadPool *pool = nullptr;
    /** When set, the work image and every variant are interned here,
     *  so identical pages across variants collapse to one chunk. */
    exe::SectionStore *store = nullptr;
};

struct BatchVariant
{
    VariantKind kind;
    exe::Executable image;
};

struct BatchResult
{
    /**
     * The analysis image: the input plus the block-counter array in
     * bss (exactly bench/common.cc's `work`). Counter-carrying
     * variants are rewrites of this image, so profilePlan's counter
     * addresses are valid for all of them.
     */
    exe::Executable work;
    /** One per requested kind, in request order. */
    std::vector<BatchVariant> variants;

    // The shared analysis, exposed so callers can read counters out
    // of finished runs without redoing any of it.
    std::vector<Routine> routines;
    qpt::ProfilePlan profilePlan;      ///< set if any counter variant
    qpt::EdgeProfilePlan edgePlan;     ///< set if EdgeProfile/Superblock
    std::vector<RoutineEdgeCounts> edgeCounts;  ///< ditto

    const exe::Executable *
    find(VariantKind kind) const
    {
        for (const BatchVariant &v : variants)
            if (v.kind == kind)
                return &v.image;
        return nullptr;
    }
};

/**
 * One analysis pass over an input image, then any number of variant
 * stampings from it. The constructor builds the CFG; rewriteAll()
 * adds exactly the analyses its requested kinds need (liveness and
 * the edge-profile run are skipped unless a superblock or
 * edge-profile variant asks for them).
 */
class BatchRewriter
{
  public:
    BatchRewriter(const exe::Executable &in, const BatchOptions &opts);

    /** Stamp one variant per kind (kinds may repeat). */
    BatchResult rewriteAll(const std::vector<VariantKind> &kinds);

  private:
    const exe::Executable &in;
    BatchOptions opts;
    std::vector<Routine> routines;
};

/**
 * The eager-copy baseline: same analysis, same variants, but every
 * image's pages are made private afterwards — the memory behaviour
 * of the pre-COW editor. Output is byte-identical to rewriteAll().
 */
BatchResult eagerRewriteAll(const exe::Executable &in,
                            const std::vector<VariantKind> &kinds,
                            const BatchOptions &opts);

} // namespace eel::edit

#endif // EEL_EEL_BATCH_HH
