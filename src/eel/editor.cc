#include "src/eel/editor.hh"

#include <map>
#include <memory>

#include "src/isa/builder.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"

namespace eel::edit {

namespace {

/** Old CTI target address, recomputed from its original encoding. */
uint32_t
oldTarget(const sched::InstRef &cti)
{
    return cti.origAddr +
           4 * static_cast<uint32_t>(cti.inst.disp);
}

sched::InstSeq
markInstrumentation(const sched::InstSeq &code)
{
    sched::InstSeq out = code;
    for (sched::InstRef &ref : out)
        ref.isInstrumentation = true;
    return out;
}

} // namespace

exe::Executable
rewrite(const exe::Executable &in,
        const std::vector<Routine> &routines,
        const InstrumentationPlan &plan, const EditOptions &opts)
{
    if (opts.schedule && !opts.model)
        fatal("editor: scheduling requested without a machine model");

    // Pass 1: build each block's new instruction sequence — snippet
    // insertion plus (optionally) scheduling. This is the expensive
    // pass and touches no global layout state, so routines are
    // independent: with opts.pool set they are built concurrently.
    // Fall-through edge snippets are laid out between blocks; taken
    // edge snippets become trampoline blocks appended after the
    // routine's last block (which never falls through).
    struct NewBlock
    {
        uint32_t newAddr = 0;          ///< assigned in the layout pass
        sched::InstSeq insts;
        uint32_t leaderOldAddr = 0;    ///< old address, if a leader
        bool isLeader = false;
        int redirectToSlot = -1;       ///< trampoline slot, if any
        uint32_t redirectTakenTo = 0;  ///< trampoline addr, if any
    };
    std::vector<std::vector<NewBlock>> newBlocks(routines.size());

    std::unique_ptr<sched::ListScheduler> scheduler;
    if (opts.schedule)
        scheduler = std::make_unique<sched::ListScheduler>(
            *opts.model, opts.sched);

    auto buildRoutine = [&](size_t ri) {
        const Routine &r = routines[ri];
        std::vector<NewBlock> &blocks = newBlocks[ri];
        std::vector<int> blockSlot(r.blocks.size(), -1);
        for (const Block &b : r.blocks) {
            sched::InstSeq code;
            if (const sched::InstSeq *snip = plan.find(ri, b.id))
                code = markInstrumentation(*snip);
            code.insert(code.end(), b.insts.begin(), b.insts.end());
            if (scheduler)
                code = scheduler->scheduleBlock(code);

            NewBlock nb;
            nb.insts = std::move(code);
            nb.leaderOldAddr = b.startAddr;
            nb.isLeader = true;
            blockSlot[b.id] = static_cast<int>(blocks.size());
            blocks.push_back(std::move(nb));

            // Fall-through edge instrumentation sits between this
            // block and the next; branch targets skip over it.
            auto fe = plan.fallEdges.find({ri, b.id});
            if (fe != plan.fallEdges.end()) {
                if (b.fallSucc < 0)
                    fatal("editor: fall-edge snippet on block %u of "
                          "'%s', which has no fall-through", b.id,
                          r.name.c_str());
                NewBlock pad;
                pad.insts = markInstrumentation(fe->second);
                blocks.push_back(std::move(pad));
            }
        }

        // Taken-edge trampolines.
        for (const Block &b : r.blocks) {
            auto te = plan.takenEdges.find({ri, b.id});
            if (te == plan.takenEdges.end())
                continue;
            if (!b.hasCti || !b.cti().isBranch() ||
                b.takenSucc < 0)
                fatal("editor: taken-edge snippet on block %u of "
                      "'%s', which has no taken edge", b.id,
                      r.name.c_str());
            const sched::InstRef &cti_ref = b.insts[b.ctiIndex()];

            sched::InstSeq tramp = markInstrumentation(te->second);
            sched::InstRef jump;
            jump.inst = isa::build::ba(0);
            // Pass 2 resolves this like any original CTI: origAddr
            // carries the old target, disp 0.
            jump.origAddr = oldTarget(cti_ref);
            jump.isInstrumentation = false;
            tramp.push_back(jump);
            if (scheduler) {
                tramp = scheduler->scheduleBlock(tramp);
            } else {
                sched::InstRef nop;
                nop.inst = isa::build::nop();
                nop.isInstrumentation = true;
                tramp.push_back(nop);
            }

            blocks[blockSlot[b.id]].redirectToSlot =
                static_cast<int>(blocks.size());
            NewBlock tb;
            tb.insts = std::move(tramp);
            blocks.push_back(std::move(tb));
        }
    };
    if (opts.pool) {
        opts.pool->parallelFor(routines.size(), buildRoutine);
    } else {
        for (size_t ri = 0; ri < routines.size(); ++ri)
            buildRoutine(ri);
    }

    // Layout pass (serial): walk routines in original order assigning
    // addresses, so the result is independent of how pass 1 was
    // scheduled across threads.
    std::map<uint32_t, uint32_t> addrMap;  // old leader -> new addr
    uint32_t cursor = exe::textBase;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        for (NewBlock &nb : newBlocks[ri]) {
            nb.newAddr = cursor;
            if (nb.isLeader)
                addrMap[nb.leaderOldAddr] = cursor;
            cursor += 4 * static_cast<uint32_t>(nb.insts.size());
        }
        for (NewBlock &nb : newBlocks[ri])
            if (nb.redirectToSlot >= 0)
                nb.redirectTakenTo =
                    newBlocks[ri][nb.redirectToSlot].newAddr;
    }
    if (cursor > exe::textLimit)
        fatal("editor: edited text (%u bytes) exceeds the text region",
              cursor - exe::textBase);

    // Pass 2: emit, patching PC-relative displacements.
    exe::Executable out;
    out.data = in.data;
    out.bssBytes = in.bssBytes;
    out.entry = addrMap.at(in.entry);
    out.text.reserve((cursor - exe::textBase) / 4);

    for (size_t ri = 0; ri < routines.size(); ++ri) {
        for (const NewBlock &nb : newBlocks[ri]) {
            uint32_t addr = nb.newAddr;
            for (const sched::InstRef &ref : nb.insts) {
                isa::Instruction inst = ref.inst;
                if ((inst.isBranch() || inst.op == isa::Op::Call) &&
                    !ref.isInstrumentation) {
                    uint32_t new_target;
                    if (nb.redirectTakenTo && inst.isBranch()) {
                        new_target = nb.redirectTakenTo;
                    } else {
                        uint32_t target = oldTarget(ref);
                        auto it = addrMap.find(target);
                        if (it == addrMap.end())
                            fatal("editor: CTI at old 0x%x targets "
                                  "0x%x, which is not a block leader",
                                  ref.origAddr, target);
                        new_target = it->second;
                    }
                    inst.disp = (static_cast<int64_t>(new_target) -
                                 static_cast<int64_t>(addr)) / 4;
                }
                out.text.push_back(isa::encode(inst));
                addr += 4;
            }
        }
    }

    // Symbols: functions move, data symbols stay.
    for (const exe::Symbol &s : in.symbols) {
        exe::Symbol ns = s;
        if (s.isFunc) {
            ns.addr = addrMap.at(s.addr);
            // New size: distance to the end of the routine's blocks.
            for (size_t ri = 0; ri < routines.size(); ++ri) {
                if (routines[ri].entry != s.addr)
                    continue;
                const NewBlock &last = newBlocks[ri].back();
                ns.size = last.newAddr +
                          4 * static_cast<uint32_t>(
                              last.insts.size()) -
                          ns.addr;
                break;
            }
        }
        out.symbols.push_back(std::move(ns));
    }
    return out;
}

} // namespace eel::edit
