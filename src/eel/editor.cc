#include "src/eel/editor.hh"

#include <bitset>
#include <map>
#include <memory>

#include "src/eel/liveness.hh"
#include "src/isa/builder.hh"
#include "src/obs/trace.hh"
#include "src/support/logging.hh"
#include "src/support/thread_pool.hh"

namespace eel::edit {

namespace {

/** Old CTI target address, recomputed from its original encoding. */
uint32_t
oldTarget(const sched::InstRef &cti)
{
    return cti.origAddr +
           4 * static_cast<uint32_t>(cti.inst.disp);
}

sched::InstSeq
markInstrumentation(const sched::InstSeq &code)
{
    sched::InstSeq out = code;
    for (sched::InstRef &ref : out)
        ref.isInstrumentation = true;
    return out;
}

} // namespace

exe::Executable
rewrite(const exe::Executable &in,
        const std::vector<Routine> &routines,
        const InstrumentationPlan &plan, const EditOptions &opts)
{
    if (opts.schedule && !opts.model)
        fatal("editor: scheduling requested without a machine model");

    const bool pipeline =
        opts.schedule && opts.scope == SchedScope::Pipeline;
    // Pipeline mode is a superset of superblock mode: trace
    // formation and cross-block scheduling run identically, with hot
    // single-block loops peeled off to the modulo scheduler first.
    const bool crossblock =
        (opts.schedule && opts.scope == SchedScope::Superblock) ||
        pipeline;
    if (crossblock) {
        if (!opts.edgeCounts ||
            opts.edgeCounts->size() != routines.size())
            fatal("editor: cross-block scheduling requires an edge "
                  "profile for every routine (EditOptions::edgeCounts)");
        if (!plan.fallEdges.empty() || !plan.takenEdges.empty())
            fatal("editor: cross-block scheduling cannot be combined "
                  "with edge instrumentation");
    }

    // Registers no original instruction in the whole program reads
    // are unobservable: clobbering one past a side exit cannot
    // change program behaviour, and instrumentation snippets define
    // their scratch before every read. Dataflow liveness alone
    // cannot prove this — calls and routine exits conservatively
    // expose every register — so the editor's reserved scratch
    // registers would otherwise never cross a side exit, pinning
    // exactly the instrumentation the superblock exists to hide.
    std::bitset<32> neverObserved;
    if (crossblock) {
        std::bitset<32> read;
        for (const Routine &r : routines)
            for (const Block &b : r.blocks)
                for (const sched::InstRef &ref : b.insts)
                    for (const auto &u : ref.inst.uses())
                        if (u.reg.tracked() &&
                            u.reg.cls == isa::RegClass::Int)
                            read.set(u.reg.idx);
        neverObserved.set(isa::reg::g6);
        neverObserved.set(isa::reg::g7);
        neverObserved &= ~read;
    }

    // Pass 1: build each block's new instruction sequence — snippet
    // insertion plus (optionally) scheduling. This is the expensive
    // pass and touches no global layout state, so routines are
    // independent: with opts.pool set they are built concurrently.
    // Fall-through edge snippets are laid out between blocks; taken
    // edge snippets become trampoline blocks appended after the
    // routine's last block (which never falls through).
    struct NewBlock
    {
        uint32_t newAddr = 0;          ///< assigned in the layout pass
        sched::InstSeq insts;
        uint32_t leaderOldAddr = 0;    ///< old address, if a leader
        bool isLeader = false;
        int redirectToSlot = -1;       ///< trampoline slot, if any
        uint32_t redirectTakenTo = 0;  ///< trampoline addr, if any
    };
    std::vector<std::vector<NewBlock>> newBlocks(routines.size());

    std::unique_ptr<sched::ListScheduler> scheduler;
    if (opts.schedule)
        scheduler = std::make_unique<sched::ListScheduler>(
            *opts.model, opts.sched);

    auto buildRoutine = [&](size_t ri) {
        obs::Span span("edit.routine");
        const Routine &r = routines[ri];
        std::vector<NewBlock> &blocks = newBlocks[ri];
        std::vector<int> blockSlot(r.blocks.size(), -1);

        // Superblock mode: form traces from the edge profile. Trace
        // members are emitted as one hot region at the head's
        // position (plus cold tail-duplicate copies); every other
        // block takes the local path below.
        std::vector<sched::Trace> traces;
        std::vector<int> traceOf(r.blocks.size(), -1);
        std::vector<uint8_t> isPipe(r.blocks.size(), 0);
        std::unique_ptr<Liveness> liveOwned;
        const Liveness *live = nullptr;
        if (crossblock) {
            traces = sched::formTraces(r, (*opts.edgeCounts)[ri],
                                       opts.superblock);
            if (pipeline) {
                for (const sched::PipelineLoop &pl :
                     sched::findPipelineLoops(
                         r, (*opts.edgeCounts)[ri], opts.pipeline))
                    isPipe[pl.block] = 1;
                // A self-loop never joins a trace (a backedge ends
                // the trace), but if one ever did, the loop wins.
                std::erase_if(traces, [&](const sched::Trace &t) {
                    for (uint32_t id : t.blocks)
                        if (isPipe[id])
                            return true;
                    return false;
                });
            }
            for (size_t t = 0; t < traces.size(); ++t)
                for (uint32_t id : traces[t].blocks)
                    traceOf[id] = static_cast<int>(t);
            bool any = !traces.empty();
            for (uint8_t p : isPipe)
                any = any || p;
            if (any) {
                if (opts.liveness) {
                    live = &(*opts.liveness)[ri];
                } else {
                    liveOwned = std::make_unique<Liveness>(r);
                    live = liveOwned.get();
                }
            }
        }

        auto blockCode = [&](const Block &b) {
            sched::InstSeq code;
            if (const sched::InstSeq *snip = plan.find(ri, b.id))
                code = markInstrumentation(*snip);
            code.insert(code.end(), b.insts.begin(),
                        b.insts.end());
            return code;
        };
        // Relink a fall-through edge whose sink is no longer
        // physically next: "ba old-target; nop", resolved by pass 2
        // like a trampoline jump.
        auto makeStub = [](uint32_t old_target) {
            NewBlock stub;
            sched::InstRef jump;
            jump.inst = isa::build::ba(0);
            jump.origAddr = old_target;
            stub.insts.push_back(jump);
            sched::InstRef nop;
            nop.inst = isa::build::nop();
            nop.isInstrumentation = true;
            stub.insts.push_back(nop);
            return stub;
        };
        auto pushStub = [&](uint32_t old_target) {
            blocks.push_back(makeStub(old_target));
        };

        // Tail-duplicate (cold) copies and their stubs collect here
        // and land after the routine's last block, off the hot path:
        // they are only ever branched to, so placement is free.
        std::vector<NewBlock> cold;

        auto emitTrace = [&](const sched::Trace &t) {
            using sched::BoundaryKind;
            // Hot copy: one segment per member block. Growth along a
            // taken edge inverts the branch so the hot successor
            // falls through; the inverted branch's displacement is
            // rewritten so pass 2's oldTarget() resolves to the new
            // exit target (the old fall-through successor).
            std::vector<sched::SbSegment> segs(t.blocks.size());
            for (size_t p = 0; p < t.blocks.size(); ++p) {
                const Block &b = r.blocks[t.blocks[p]];
                sched::SbSegment &s = segs[p];
                s.insts = blockCode(b);
                if (b.hasCti)
                    s.ctiPos =
                        static_cast<int>(s.insts.size()) - 2;
                int exit_blk = -1;  // the branch's off-path target
                if (p + 1 < t.blocks.size() && t.viaTaken[p + 1]) {
                    sched::InstRef &cti = s.insts[s.ctiPos];
                    cti.inst.cond ^= 8;
                    uint32_t exit_old =
                        r.blocks[b.fallSucc].startAddr;
                    cti.inst.disp = static_cast<int32_t>(
                        (static_cast<int64_t>(exit_old) -
                         static_cast<int64_t>(cti.origAddr)) / 4);
                    exit_blk = b.fallSucc;
                } else if (b.hasCti) {
                    exit_blk = b.takenSucc;
                }
                if (p + 1 == t.blocks.size())
                    continue;  // last segment: boundary unused
                if (!b.hasCti) {
                    s.boundary = BoundaryKind::Free;
                    continue;
                }
                const isa::Instruction &ci =
                    s.insts[s.ctiPos].inst;
                if (ci.isBranch() && ci.isNeverBranch()) {
                    s.boundary = BoundaryKind::Free;
                } else if (ci.isBranch() && !ci.isAlwaysBranch() &&
                           exit_blk >= 0) {
                    s.boundary = BoundaryKind::CondExit;
                    s.exitLive = live->liveInSet(
                                     static_cast<uint32_t>(
                                         exit_blk)) &
                                 ~neverObserved;
                    const edit::BlockEdgeCounts &bc =
                        (*opts.edgeCounts)[ri][b.id];
                    uint64_t flow = bc.fall + bc.taken;
                    uint64_t exits =
                        t.viaTaken[p + 1] ? bc.fall : bc.taken;
                    if (flow > 0)
                        s.exitProb =
                            static_cast<double>(exits) /
                            static_cast<double>(flow);
                } else {
                    s.boundary = BoundaryKind::Rigid;
                }
            }

            NewBlock hot;
            hot.insts = sched::scheduleSuperblock(
                segs, *opts.model, opts.sched, opts.superblock);
            hot.leaderOldAddr = r.blocks[t.blocks.front()].startAddr;
            hot.isLeader = true;
            blockSlot[t.blocks.front()] =
                static_cast<int>(blocks.size());
            blocks.push_back(std::move(hot));
            // The hot copy's fall-through exit needs a relink stub
            // unless the old layout's next block still comes out
            // physically next. That holds exactly when the trace is
            // contiguous fall-through code (so the main loop resumes
            // at id last+1 right after us) and that successor is not
            // swallowed into some trace as a non-head member.
            bool contiguous = true;
            for (size_t p = 1; p < t.blocks.size(); ++p)
                if (t.viaTaken[p] ||
                    t.blocks[p] != t.blocks[p - 1] + 1)
                    contiguous = false;
            const Block &last = r.blocks[t.blocks.back()];
            bool falls_next =
                contiguous &&
                last.fallSucc ==
                    static_cast<int>(t.blocks.back()) + 1 &&
                (traceOf[last.fallSucc] < 0 ||
                 traces[traceOf[last.fallSucc]].blocks.front() ==
                     static_cast<uint32_t>(last.fallSucc));
            if (last.fallSucc >= 0 && !falls_next)
                pushStub(r.blocks[last.fallSucc].startAddr);

            // Cold copies: the tail-duplicated suffix keeps the old
            // leader addresses so every side entrance still lands on
            // equivalent (locally scheduled) code.
            for (size_t p = t.dupFrom; p < t.blocks.size(); ++p) {
                const Block &b = r.blocks[t.blocks[p]];
                NewBlock cb;
                cb.insts = scheduler->scheduleBlock(blockCode(b));
                cb.leaderOldAddr = b.startAddr;
                cb.isLeader = true;
                cold.push_back(std::move(cb));
                bool next_is_fall =
                    p + 1 < t.blocks.size() &&
                    b.fallSucc ==
                        static_cast<int>(t.blocks[p + 1]);
                if (b.fallSucc >= 0 && !next_is_fall)
                    cold.push_back(
                        makeStub(r.blocks[b.fallSucc].startAddr));
            }
        };

        // A hot single-block loop becomes a software pipeline:
        // rotation emits a prologue (the hoisted next-iteration set,
        // executed once per loop entry) at the old header address,
        // falling into the kernel whose backedge pass 2 re-targets
        // at the kernel block itself. The unroll fallback and the
        // plain schedule stay a single leader block, their branches
        // resolved through the ordinary old-address map.
        auto emitLoop = [&](const Block &b) {
            sched::InstSeq code = blockCode(b);
            std::bitset<32> exitLive =
                live->liveInSet(static_cast<uint32_t>(b.fallSucc)) &
                ~neverObserved;
            const edit::BlockEdgeCounts &bc =
                (*opts.edgeCounts)[ri][b.id];
            uint64_t flow = bc.fall + bc.taken;
            double exitProb =
                flow ? static_cast<double>(bc.fall) / flow : 0.0;
            sched::LoopSchedule ls = sched::scheduleLoop(
                code, exitLive, exitProb,
                r.blocks[b.fallSucc].startAddr, *opts.model,
                opts.sched, opts.superblock, opts.pipeline);
            if (ls.kind == sched::LoopKind::Rotate) {
                NewBlock pro;
                pro.insts = std::move(ls.prologue);
                pro.leaderOldAddr = b.startAddr;
                pro.isLeader = true;
                blockSlot[b.id] = static_cast<int>(blocks.size());
                blocks.push_back(std::move(pro));
                NewBlock kern;
                kern.insts = std::move(ls.kernel);
                kern.redirectToSlot =
                    static_cast<int>(blocks.size());  // itself
                blocks.push_back(std::move(kern));
            } else {
                NewBlock nb;
                nb.insts = std::move(ls.kernel);
                nb.leaderOldAddr = b.startAddr;
                nb.isLeader = true;
                blockSlot[b.id] = static_cast<int>(blocks.size());
                blocks.push_back(std::move(nb));
            }
            if (b.fallSucc >= 0 && traceOf[b.fallSucc] >= 0 &&
                traces[traceOf[b.fallSucc]].blocks.front() !=
                    static_cast<uint32_t>(b.fallSucc))
                pushStub(r.blocks[b.fallSucc].startAddr);
        };

        for (const Block &b : r.blocks) {
            if (isPipe[b.id]) {
                emitLoop(b);
                continue;
            }
            if (traceOf[b.id] >= 0) {
                const sched::Trace &t = traces[traceOf[b.id]];
                if (t.blocks.front() == b.id)
                    emitTrace(t);
                continue;
            }
            sched::InstSeq code = blockCode(b);
            if (scheduler)
                code = scheduler->scheduleBlock(code);

            NewBlock nb;
            nb.insts = std::move(code);
            nb.leaderOldAddr = b.startAddr;
            nb.isLeader = true;
            blockSlot[b.id] = static_cast<int>(blocks.size());
            blocks.push_back(std::move(nb));

            // A fall-through successor that moved into a trace (as a
            // non-head member) is no longer physically next; relink.
            // Such a member has this off-trace predecessor plus its
            // trace predecessor, so it is tail-duplicated and its
            // old leader address maps to the cold copy.
            if (b.fallSucc >= 0 && traceOf[b.fallSucc] >= 0 &&
                traces[traceOf[b.fallSucc]].blocks.front() !=
                    static_cast<uint32_t>(b.fallSucc))
                pushStub(r.blocks[b.fallSucc].startAddr);

            // Fall-through edge instrumentation sits between this
            // block and the next; branch targets skip over it.
            auto fe = plan.fallEdges.find({ri, b.id});
            if (fe != plan.fallEdges.end()) {
                if (b.fallSucc < 0)
                    fatal("editor: fall-edge snippet on block %u of "
                          "'%s', which has no fall-through", b.id,
                          r.name.c_str());
                NewBlock pad;
                pad.insts = markInstrumentation(fe->second);
                blocks.push_back(std::move(pad));
            }
        }

        for (NewBlock &cb : cold)
            blocks.push_back(std::move(cb));

        // Taken-edge trampolines.
        for (const Block &b : r.blocks) {
            auto te = plan.takenEdges.find({ri, b.id});
            if (te == plan.takenEdges.end())
                continue;
            if (!b.hasCti || !b.cti().isBranch() ||
                b.takenSucc < 0)
                fatal("editor: taken-edge snippet on block %u of "
                      "'%s', which has no taken edge", b.id,
                      r.name.c_str());
            const sched::InstRef &cti_ref = b.insts[b.ctiIndex()];

            sched::InstSeq tramp = markInstrumentation(te->second);
            sched::InstRef jump;
            jump.inst = isa::build::ba(0);
            // Pass 2 resolves this like any original CTI: origAddr
            // carries the old target, disp 0.
            jump.origAddr = oldTarget(cti_ref);
            jump.isInstrumentation = false;
            tramp.push_back(jump);
            if (scheduler) {
                tramp = scheduler->scheduleBlock(tramp);
            } else {
                sched::InstRef nop;
                nop.inst = isa::build::nop();
                nop.isInstrumentation = true;
                tramp.push_back(nop);
            }

            blocks[blockSlot[b.id]].redirectToSlot =
                static_cast<int>(blocks.size());
            NewBlock tb;
            tb.insts = std::move(tramp);
            blocks.push_back(std::move(tb));
        }
    };
    {
        obs::Span span("edit.build");
        if (opts.pool) {
            opts.pool->parallelFor(routines.size(), buildRoutine);
        } else {
            for (size_t ri = 0; ri < routines.size(); ++ri)
                buildRoutine(ri);
        }
    }

    obs::Span emitSpan("edit.layout+emit");
    // Layout pass (serial): walk routines in original order assigning
    // addresses, so the result is independent of how pass 1 was
    // scheduled across threads.
    std::map<uint32_t, uint32_t> addrMap;  // old leader -> new addr
    uint32_t cursor = exe::textBase;
    for (size_t ri = 0; ri < routines.size(); ++ri) {
        for (NewBlock &nb : newBlocks[ri]) {
            nb.newAddr = cursor;
            if (nb.isLeader)
                addrMap[nb.leaderOldAddr] = cursor;
            cursor += 4 * static_cast<uint32_t>(nb.insts.size());
        }
        for (NewBlock &nb : newBlocks[ri])
            if (nb.redirectToSlot >= 0)
                nb.redirectTakenTo =
                    newBlocks[ri][nb.redirectToSlot].newAddr;
    }
    if (cursor > exe::textLimit)
        fatal("editor: edited text (%u bytes) exceeds the text region",
              cursor - exe::textBase);

    // Pass 2: emit, patching PC-relative displacements.
    exe::Executable out;
    out.data = in.data;
    out.bssBytes = in.bssBytes;
    out.entry = addrMap.at(in.entry);
    out.text.reserve((cursor - exe::textBase) / 4);

    for (size_t ri = 0; ri < routines.size(); ++ri) {
        for (const NewBlock &nb : newBlocks[ri]) {
            uint32_t addr = nb.newAddr;
            for (const sched::InstRef &ref : nb.insts) {
                isa::Instruction inst = ref.inst;
                if ((inst.isBranch() || inst.op == isa::Op::Call) &&
                    !ref.isInstrumentation) {
                    uint32_t new_target;
                    if (nb.redirectTakenTo && inst.isBranch()) {
                        new_target = nb.redirectTakenTo;
                    } else {
                        uint32_t target = oldTarget(ref);
                        auto it = addrMap.find(target);
                        if (it == addrMap.end())
                            fatal("editor: CTI at old 0x%x targets "
                                  "0x%x, which is not a block leader",
                                  ref.origAddr, target);
                        new_target = it->second;
                    }
                    inst.disp = (static_cast<int64_t>(new_target) -
                                 static_cast<int64_t>(addr)) / 4;
                }
                out.text.push_back(isa::encode(inst));
                addr += 4;
            }
        }
    }

    // Symbols: functions move, data symbols stay.
    for (const exe::Symbol &s : in.symbols) {
        exe::Symbol ns = s;
        if (s.isFunc) {
            ns.addr = addrMap.at(s.addr);
            // New size: distance to the end of the routine's blocks.
            for (size_t ri = 0; ri < routines.size(); ++ri) {
                if (routines[ri].entry != s.addr)
                    continue;
                const NewBlock &last = newBlocks[ri].back();
                ns.size = last.newAddr +
                          4 * static_cast<uint32_t>(
                              last.insts.size()) -
                          ns.addr;
                break;
            }
        }
        out.symbols.push_back(std::move(ns));
    }
    return out;
}

} // namespace eel::edit
