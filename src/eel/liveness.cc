#include "src/eel/liveness.hh"

namespace eel::edit {

namespace {

/** Registers instrumentation must never clobber even when "dead":
 *  %g0, the stack and frame pointers, and the link registers. */
Liveness::RegSet
neverTouch()
{
    Liveness::RegSet s;
    s.set(isa::reg::g0);
    s.set(isa::reg::sp);
    s.set(isa::reg::fp);
    s.set(isa::reg::o7);
    s.set(isa::reg::i7);
    return s;
}

/** Everything a callee or caller might observe. */
Liveness::RegSet
allRegs()
{
    Liveness::RegSet s;
    s.set();
    return s;
}

} // namespace

Liveness::Liveness(const Routine &routine)
{
    const size_t n = routine.blocks.size();
    std::vector<RegSet> gen(n), kill(n);

    for (const Block &b : routine.blocks) {
        RegSet &g = gen[b.id];
        RegSet &k = kill[b.id];
        // After a window rotation, register names no longer denote
        // the same physical registers as at block entry, so further
        // defs cannot contribute to the entry kill set.
        bool window_shifted = false;
        for (const sched::InstRef &ref : b.insts) {
            for (const auto &acc : ref.inst.uses()) {
                if (acc.reg.cls == isa::RegClass::Int &&
                    !k[acc.reg.idx])
                    g.set(acc.reg.idx);
            }
            // A call may read anything the callee can see; registers
            // written earlier in this block still shadow it.
            if (ref.inst.isCall())
                g |= allRegs() & ~k;
            if (ref.inst.op == isa::Op::Save ||
                ref.inst.op == isa::Op::Restore) {
                g |= allRegs() & ~k;
                window_shifted = true;
            }
            if (!window_shifted) {
                for (const auto &acc : ref.inst.defs()) {
                    if (acc.reg.cls == isa::RegClass::Int)
                        k.set(acc.reg.idx);
                }
            }
        }
    }

    liveInSets.assign(n, RegSet());
    std::vector<RegSet> liveOut(n);

    // Blocks that leave the routine expose everything.
    auto exitsRoutine = [&](const Block &b) {
        return b.takenSucc < 0 && b.fallSucc < 0;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
            const Block &b = routine.blocks[i];
            RegSet out;
            if (exitsRoutine(b)) {
                out = allRegs();
            } else {
                if (b.takenSucc >= 0)
                    out |= liveInSets[b.takenSucc];
                if (b.fallSucc >= 0)
                    out |= liveInSets[b.fallSucc];
            }
            RegSet in = gen[i] | (out & ~kill[i]);
            if (in != liveInSets[i] || out != liveOut[i]) {
                liveInSets[i] = in;
                liveOut[i] = out;
                changed = true;
            }
        }
    }
}

Liveness::RegSet
Liveness::deadAt(uint32_t block) const
{
    return ~(liveInSets[block] | neverTouch());
}

unsigned
Liveness::pick(uint32_t block, unsigned n, uint8_t *out) const
{
    RegSet dead = deadAt(block);
    unsigned found = 0;
    for (unsigned r = 0; r < 32 && found < n; ++r)
        if (dead[r])
            out[found++] = static_cast<uint8_t>(r);
    return found;
}

} // namespace eel::edit
