#include "src/workload/spec.hh"

#include <functional>

namespace eel::workload {

namespace {

struct Row
{
    const char *name;
    double bbUltra;   ///< Table 1/2 average dynamic block size
    double bbSuper;   ///< Table 3
};

// CINT95.
constexpr Row intRows[] = {
    {"099.go", 2.9, 2.8},
    {"124.m88ksim", 2.2, 2.3},
    {"126.gcc", 2.2, 2.2},
    {"129.compress", 3.0, 3.0},
    {"130.li", 2.0, 2.0},
    {"132.ijpeg", 6.2, 6.4},
    {"134.perl", 2.4, 2.3},
    {"147.vortex", 2.1, 2.1},
};

// CFP95.
constexpr Row fpRows[] = {
    {"101.tomcatv", 13.8, 11.4},
    {"102.swim", 49.0, 66.1},
    {"103.su2cor", 10.2, 10.1},
    {"104.hydro2d", 4.7, 4.4},
    {"107.mgrid", 32.4, 46.9},
    {"110.applu", 12.5, 9.3},
    {"125.turb3d", 6.1, 5.7},
    {"141.apsi", 10.4, 11.8},
    {"145.fpppp", 33.9, 28.2},
    {"146.wave5", 10.9, 13.3},
};

} // namespace

std::vector<BenchmarkSpec>
spec95(std::string_view machine)
{
    bool super = machine == "supersparc";
    std::vector<BenchmarkSpec> out;

    for (const Row &r : intRows) {
        BenchmarkSpec s;
        s.name = r.name;
        s.fp = false;
        s.avgBlockSize = super ? r.bbSuper : r.bbUltra;
        s.loadFrac = 0.26;
        s.storeFrac = 0.10;
        s.fpFrac = 0.0;
        // Integer codes chase pointers and recompute flags: tight
        // chains, little ILP.
        s.serialProb = 0.85;
        s.seed = std::hash<std::string>{}(s.name) | 1;
        out.push_back(std::move(s));
    }
    for (const Row &r : fpRows) {
        BenchmarkSpec s;
        s.name = r.name;
        s.fp = true;
        s.avgBlockSize = super ? r.bbSuper : r.bbUltra;
        s.loadFrac = 0.26;
        s.storeFrac = 0.12;
        s.fpFrac = 0.42;
        // Unrolled array loops: wide independent chains.
        s.serialProb = 0.15;
        s.seed = std::hash<std::string>{}(s.name) | 1;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace eel::workload
