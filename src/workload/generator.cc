#include "src/workload/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "src/isa/builder.hh"
#include "src/sched/scheduler.hh"
#include "src/support/logging.hh"
#include "src/support/rng.hh"

namespace eel::workload {

namespace {

using isa::Instruction;
using isa::Op;
using sched::InstRef;
using sched::InstSeq;
namespace b = isa::build;
namespace rn = isa::reg;

/** One basic block under construction: body + optional terminator. */
struct GenBlock
{
    InstSeq body;
    bool hasCti = false;
    Instruction cti;
    /** Explicit delay-slot instruction (e.g. the restore of a
     *  ret/restore pair); when absent the scheduler fills the slot. */
    bool hasDelay = false;
    Instruction delay;
    int targetBlock = -1;  ///< branch target (block index in fn)
    int callFn = -1;       ///< call target (function index)
};

struct GenFunction
{
    std::string name;
    std::vector<GenBlock> blocks;

    int
    newBlock()
    {
        blocks.emplace_back();
        return static_cast<int>(blocks.size() - 1);
    }
};

/** A data array the generated code loads from / stores to. */
struct Region
{
    uint32_t addr;
    uint32_t bytes;
    int32_t tag;
};

constexpr uint32_t regionBytes = 2048;

/** Registers generated code may freely use for values. */
constexpr uint8_t intWorkRegs[] = {
    rn::o0, rn::o1, rn::o2, rn::o3, rn::o4, rn::o5,
    rn::i1, rn::i2, rn::i3, rn::i4, rn::i5,
    rn::g1, rn::g2, rn::g3, rn::g4,
};
constexpr unsigned numIntWork = std::size(intWorkRegs);
// Double-precision pairs f0 .. f22.
constexpr unsigned numFpWork = 12;

class Builder
{
  public:
    Builder(const BenchmarkSpec &spec, const GenOptions &opts)
        : spec(spec), opts(opts), rng(spec.seed)
    {}

    exe::Executable build();

  private:
    void
    emit(GenBlock &blk, Instruction inst, int32_t tag = -1,
         int64_t off = 0)
    {
        InstRef ref;
        ref.inst = inst;
        ref.memTag = tag;
        ref.memOff = off;
        blk.body.push_back(ref);
    }

    uint8_t
    pickIntWork()
    {
        return intWorkRegs[rng.uniform(0, numIntWork - 1)];
    }
    uint8_t
    pickIntSrc()
    {
        if (haveLastInt && rng.chance(spec.serialProb))
            return lastIntDef;
        return pickIntWork();
    }
    uint8_t
    pickFpPair()
    {
        return static_cast<uint8_t>(2 * rng.uniform(0, numFpWork - 1));
    }
    uint8_t
    pickFpSrc()
    {
        if (haveLastFp && rng.chance(spec.serialProb))
            return lastFpDef;
        return pickFpPair();
    }

    /** Pick among the current kernel's regions (based in l1-l4). */
    Region &
    pickRegion()
    {
        return regions[regionLo +
                       static_cast<size_t>(rng.uniform(0, 3))];
    }

    /** Emit one random work instruction into blk. */
    void emitWorkInst(GenBlock &blk);
    /** Emit one loop-carried register recurrence op. */
    void emitRecurrenceInst(GenBlock &blk);
    /** Emit one load-modify-store memory recurrence slot. */
    void emitMemRecurrence(GenBlock &blk, unsigned slot);
    /** Emit n work instructions. */
    void
    emitWork(GenBlock &blk, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            emitWorkInst(blk);
    }
    /** Body length draw around mean (>= 0). */
    unsigned
    drawLen(double mean)
    {
        if (mean <= 0)
            return 0;
        return static_cast<unsigned>(
            rng.geometric(mean, 0));
    }

    /** sethi/or a 32-bit constant into reg. */
    void
    emitSet32(GenBlock &blk, uint8_t reg, uint32_t value)
    {
        emit(blk, b::sethi(reg, value));
        if (value & 0x3ff)
            emit(blk, b::rri(Op::Or, reg, reg,
                             static_cast<int32_t>(value & 0x3ff)));
    }

    uint32_t allocRegion(bool fp_data);
    GenFunction makeKernel(unsigned index, unsigned &insts_per_call);
    GenFunction makeMain(uint64_t outer_iters);
    exe::Executable assemble();

    const BenchmarkSpec &spec;
    const GenOptions &opts;
    Rng rng;

    exe::Executable xe;
    std::vector<GenFunction> fns;
    std::vector<Region> regions;
    size_t regionLo = 0;
    int32_t nextTag = 0;

    // Dataflow bookkeeping (reset per block).
    bool haveLastInt = false, haveLastFp = false;
    uint8_t lastIntDef = 0, lastFpDef = 0;

    // Per-kernel registers (fixed convention, see DESIGN.md):
    // l0 loop counter, l1-l4 region bases, l5 checksum, l6 parity.
    static constexpr unsigned kernelIters = 200;
};

uint32_t
Builder::allocRegion(bool fp_data)
{
    uint32_t off = static_cast<uint32_t>(xe.data.size());
    for (uint32_t i = 0; i < regionBytes / 8; ++i) {
        if (fp_data) {
            // Doubles in [0.5, 1.5), stored big-endian.
            double v = 0.5 + rng.real01();
            uint64_t bits;
            std::memcpy(&bits, &v, 8);
            for (int k = 7; k >= 0; --k)
                xe.data.push_back(
                    static_cast<uint8_t>(bits >> (8 * k)));
        } else {
            for (int k = 0; k < 8; ++k)
                xe.data.push_back(
                    static_cast<uint8_t>(rng.uniform(0, 255)));
        }
    }
    Region r{exe::dataBase + off, regionBytes, nextTag++};
    regions.push_back(r);
    return r.addr;
}

void
Builder::emitRecurrenceInst(GenBlock &blk)
{
    // `op acc, acc, src`: acc is read and rewritten every iteration,
    // closing a dependence cycle over the backedge. The accumulators
    // are a small fixed prefix of the work registers so several
    // recurrence ops land on the same register and the cycle gets a
    // latency chain, not just a single self-edge.
    if (spec.fp && spec.fpFrac > 0 && rng.chance(0.5)) {
        uint8_t acc = static_cast<uint8_t>(2 * rng.uniform(0, 2));
        emit(blk, b::fp3(Op::Faddd, acc, acc, pickFpSrc()));
        haveLastFp = true;
        lastFpDef = acc;
        return;
    }
    static constexpr Op recOps[] = {Op::Add, Op::Sub, Op::Xor};
    uint8_t acc = intWorkRegs[rng.uniform(0, 2)];
    Op op = recOps[rng.uniform(0, 2)];
    if (rng.chance(0.5))
        emit(blk, b::rri(op, acc, acc,
                         static_cast<int32_t>(rng.uniform(1, 255))));
    else
        emit(blk, b::rrr(op, acc, acc, pickIntSrc()));
    haveLastInt = true;
    lastIntDef = acc;
}

void
Builder::emitMemRecurrence(GenBlock &blk, unsigned slot)
{
    // Fixed address per slot: every iteration reloads, bumps and
    // rewrites the same word, so the st -> next-iteration ld is a
    // loop-carried memory dependence (visible to the scheduler only
    // through alias analysis on the matching tag/offset).
    Region &r = regions[regionLo + slot % 4];
    int64_t off = 4 * static_cast<int64_t>(slot % 8);
    uint8_t tmp = pickIntWork();
    emit(blk, b::memi(Op::Ld, tmp, rn::l1 + r.tag % 4,
                      static_cast<int32_t>(off)),
         r.tag, off);
    emit(blk, b::rri(Op::Add, tmp, tmp, 1));
    emit(blk, b::memi(Op::St, tmp, rn::l1 + r.tag % 4,
                      static_cast<int32_t>(off)),
         r.tag, off);
    haveLastInt = true;
    lastIntDef = tmp;
}

void
Builder::emitWorkInst(GenBlock &blk)
{
    if (spec.recurrenceFrac > 0 &&
        rng.chance(spec.recurrenceFrac)) {
        emitRecurrenceInst(blk);
        return;
    }
    double roll = rng.real01();
    double load_p = spec.loadFrac;
    double store_p = load_p + spec.storeFrac;
    double fp_p = store_p + spec.fpFrac;

    if (roll < load_p) {
        Region &r = pickRegion();
        bool fp_load = spec.fp && rng.chance(0.5);
        if (fp_load) {
            int64_t off = 8 * rng.uniform(0, r.bytes / 8 - 1);
            uint8_t dst = pickFpPair();
            emit(blk, b::memi(Op::Lddf, dst, rn::l1 + r.tag % 4,
                              static_cast<int32_t>(off)),
                 r.tag, off);
            haveLastFp = true;
            lastFpDef = dst;
        } else {
            int64_t off = 4 * rng.uniform(0, r.bytes / 4 - 1);
            uint8_t dst = pickIntWork();
            emit(blk, b::memi(Op::Ld, dst, rn::l1 + r.tag % 4,
                              static_cast<int32_t>(off)),
                 r.tag, off);
            haveLastInt = true;
            lastIntDef = dst;
        }
    } else if (roll < store_p) {
        Region &r = pickRegion();
        bool fp_store = spec.fp && rng.chance(0.5);
        if (fp_store) {
            int64_t off = 8 * rng.uniform(0, r.bytes / 8 - 1);
            emit(blk, b::memi(Op::Stdf, pickFpSrc(),
                              rn::l1 + r.tag % 4,
                              static_cast<int32_t>(off)),
                 r.tag, off);
        } else {
            int64_t off = 4 * rng.uniform(0, r.bytes / 4 - 1);
            emit(blk, b::memi(Op::St, pickIntSrc(),
                              rn::l1 + r.tag % 4,
                              static_cast<int32_t>(off)),
                 r.tag, off);
        }
    } else if (roll < fp_p) {
        static constexpr Op fpOps[] = {Op::Faddd, Op::Fsubd,
                                       Op::Fmuld, Op::Faddd};
        Op op = fpOps[rng.uniform(0, 3)];
        uint8_t dst = pickFpPair();
        emit(blk, b::fp3(op, dst, pickFpSrc(), pickFpSrc()));
        haveLastFp = true;
        lastFpDef = dst;
    } else {
        static constexpr Op intOps[] = {Op::Add, Op::Sub, Op::And,
                                        Op::Or, Op::Xor, Op::Add,
                                        Op::Sll, Op::Sra};
        Op op = intOps[rng.uniform(0, 7)];
        uint8_t dst = pickIntWork();
        uint8_t s1 = pickIntSrc();
        bool shift = op == Op::Sll || op == Op::Sra;
        if (!shift && rng.chance(0.4)) {
            emit(blk, b::rri(op, dst, s1,
                             static_cast<int32_t>(
                                 rng.uniform(-2048, 2047))));
        } else if (shift) {
            emit(blk, b::rri(op, dst, s1,
                             static_cast<int32_t>(rng.uniform(1, 15))));
        } else {
            emit(blk, b::rrr(op, dst, s1, pickIntSrc()));
        }
        haveLastInt = true;
        lastIntDef = dst;
    }
}

GenFunction
Builder::makeKernel(unsigned index, unsigned &insts_per_call)
{
    GenFunction fn;
    fn.name = strfmt("kernel%u", index);

    // Four fresh data regions, based in l1-l4.
    regionLo = regions.size();
    uint32_t base[4];
    for (unsigned i = 0; i < 4; ++i)
        base[i] = allocRegion(spec.fp);

    // --- entry block: prologue + register initialization ---
    int entry = fn.newBlock();
    {
        GenBlock &e = fn.blocks[entry];
        emit(e, b::save(96));
        for (unsigned i = 0; i < 4; ++i)
            emitSet32(e, rn::l1 + i, base[i]);
        for (uint8_t r : intWorkRegs)
            emit(e, b::rri(Op::Or, r, rn::g0,
                           static_cast<int32_t>(rng.uniform(1, 4095))));
        if (spec.fp) {
            for (unsigned p = 0; p < numFpWork; ++p)
                emit(e, b::memi(Op::Lddf, static_cast<uint8_t>(2 * p),
                                rn::l1, static_cast<int32_t>(8 * p)),
                     regions[regionLo].tag, 8 * p);
        }
        emit(e, b::movi(rn::l5, 0));                   // checksum
        emit(e, b::movi(rn::l6, 0));                   // parity
        emit(e, b::movi(rn::l0, kernelIters));         // counter
    }

    // --- loop body ---
    double t = spec.avgBlockSize;
    unsigned emitted_per_iter = 0;
    int head;

    if (t >= 6.0) {
        // One long straight-line block per iteration. The fixed
        // overhead (checksum, loop counter, branch, delay slot) is
        // ~4.4 instructions; the work length makes up the rest of
        // the target block size.
        head = fn.newBlock();
        GenBlock &blk = fn.blocks[head];
        unsigned body_len = static_cast<unsigned>(
            std::max(1.0,
                     std::round(t - 4.4 - 3.0 * spec.memRecurrences)));
        emitWork(blk, body_len);
        for (unsigned s = 0; s < spec.memRecurrences; ++s)
            emitMemRecurrence(blk, s);
        emit(blk, b::rrr(Op::Add, rn::l5, rn::l5, lastIntDef));
        emit(blk, b::rrr(Op::Xor, rn::l5, rn::l5, rn::l0));
        emit(blk, b::rri(Op::Subcc, rn::l0, rn::l0, 1));
        blk.hasCti = true;
        blk.cti = b::bicc(isa::cond::ne, 0);
        blk.targetBlock = head;
        emitted_per_iter = body_len + 3 * spec.memRecurrences + 4;
    } else {
        // Diamond chain: D headers that conditionally skip a small
        // fall-through block, then a loop tail.
        constexpr unsigned D = 4;
        double body_mean = std::max(0.0, t - 2.5);
        head = -1;
        for (unsigned d = 0; d < D; ++d) {
            int h = fn.newBlock();
            if (head < 0)
                head = h;
            int fall = fn.newBlock();
            int merge = fn.newBlock();
            {
                GenBlock &hb = fn.blocks[h];
                unsigned len = drawLen(body_mean);
                emitWork(hb, len);
                emit(hb, b::rri(Op::Andcc, rn::g0, rn::l6,
                                1 << (d % 4)));
                hb.hasCti = true;
                hb.cti = b::bicc(isa::cond::ne, 0);
                hb.targetBlock = merge;
                emitted_per_iter += len + 2;
            }
            {
                GenBlock &fb = fn.blocks[fall];
                unsigned len = 1 + drawLen(body_mean);
                emitWork(fb, len);
                emitted_per_iter += len / 2;  // executed ~50%
            }
            // merge block is the next header (empty until then).
            (void)merge;
        }
        // Loop tail lives in the final merge block.
        GenBlock &tail = fn.blocks[fn.blocks.size() - 1];
        unsigned len = drawLen(body_mean);
        emitWork(tail, len);
        for (unsigned s = 0; s < spec.memRecurrences; ++s)
            emitMemRecurrence(tail, s);
        emitted_per_iter += 3 * spec.memRecurrences;
        emit(tail, b::rri(Op::Add, rn::l6, rn::l6, 1));
        emit(tail, b::rrr(Op::Add, rn::l5, rn::l5, lastIntDef));
        emit(tail, b::rrr(Op::Xor, rn::l5, rn::l5, rn::l6));
        emit(tail, b::rri(Op::Subcc, rn::l0, rn::l0, 1));
        tail.hasCti = true;
        tail.cti = b::bicc(isa::cond::ne, 0);
        tail.targetBlock = head;
        emitted_per_iter += len + 4;
    }

    // --- exit block: the restore rides the return's delay slot and
    // moves the checksum into the caller's %o0 ---
    int exit_blk = fn.newBlock();
    {
        GenBlock &x = fn.blocks[exit_blk];
        emit(x, b::memi(Op::Ld, rn::o0, rn::l1, 0),
             regions[regionLo].tag, 0);
        emit(x, b::rrr(Op::Xor, rn::l5, rn::l5, rn::o0));
        x.hasCti = true;
        x.cti = b::ret();
        x.hasDelay = true;
        x.delay = b::rri(Op::Restore, rn::o0, rn::l5, 0);
    }

    insts_per_call = kernelIters * std::max(emitted_per_iter, 1u) + 40;
    return fn;
}

GenFunction
Builder::makeMain(uint64_t outer_iters)
{
    GenFunction fn;
    fn.name = "main";

    int entry = fn.newBlock();
    {
        GenBlock &e = fn.blocks[entry];
        emit(e, b::save(96));
        emit(e, b::movi(rn::l7, 0));
        emitSet32(e, rn::l0,
                  static_cast<uint32_t>(std::max<uint64_t>(
                      1, outer_iters)));
    }

    // Loop head: one block per kernel call; accumulate checksums.
    int head = -1;
    for (unsigned k = 0; k < spec.kernels; ++k) {
        int blk = fn.newBlock();
        if (head < 0)
            head = blk;
        GenBlock &cb = fn.blocks[blk];
        if (k > 0)
            emit(cb, b::rrr(Op::Add, rn::l7, rn::l7, rn::o0));
        cb.hasCti = true;
        cb.cti = b::call(0);
        cb.callFn = static_cast<int>(k);  // kernels are fns 0..N-1
    }
    int tail = fn.newBlock();
    {
        GenBlock &tb = fn.blocks[tail];
        emit(tb, b::rrr(Op::Add, rn::l7, rn::l7, rn::o0));
        emit(tb, b::rrr(Op::Xor, rn::l7, rn::l7, rn::l0));
        emit(tb, b::rri(Op::Subcc, rn::l0, rn::l0, 1));
        tb.hasCti = true;
        tb.cti = b::bicc(isa::cond::ne, 0);
        tb.targetBlock = head;
    }

    int exit_blk = fn.newBlock();
    {
        GenBlock &x = fn.blocks[exit_blk];
        emit(x, b::mov(rn::o0, rn::l7));
        emit(x, b::ta(isa::trap::put_int));
        emit(x, b::movi(rn::o0, 0));
        emit(x, b::ta(isa::trap::exit_prog));
        x.hasCti = true;
        x.cti = b::ret();
        x.hasDelay = true;
        x.delay = b::restore();
    }
    return fn;
}

exe::Executable
Builder::assemble()
{
    // The "oracle compiler" scheduling pass: the same list scheduler
    // as EEL's, but with perfect alias information and a search over
    // several jittered candidate schedules per block, keeping the
    // best one under the exact machine model. This mimics the
    // stronger optimizers in the Sun compilers the paper instruments
    // (section 4.2), whose schedules EEL's single-pass heuristic can
    // degrade.
    std::vector<std::unique_ptr<sched::ListScheduler>> oracles;
    if (opts.oracleSchedule) {
        if (!opts.machine)
            fatal("generator: oracle scheduling needs a machine model");
        sched::SchedOptions base_opts;
        base_opts.alias = sched::AliasPolicy::Oracle;
        oracles.push_back(std::make_unique<sched::ListScheduler>(
            *opts.machine, base_opts));
        sched::SchedOptions dist_opts = base_opts;
        dist_opts.priority =
            sched::SchedOptions::Priority::DistanceOnly;
        oracles.push_back(std::make_unique<sched::ListScheduler>(
            *opts.machine, dist_opts));
        for (uint64_t seed = 1; seed <= 6; ++seed) {
            sched::SchedOptions j = base_opts;
            j.tieJitterSeed = seed * 0x9e3779b97f4a7c15ull;
            oracles.push_back(std::make_unique<sched::ListScheduler>(
                *opts.machine, j));
        }
    }
    // Candidates are judged on two back-to-back copies of the block
    // — the loop steady state. This is the oracle's decisive edge
    // over EEL: a global view of cross-iteration overlap that a
    // one-pass local list scheduler cannot reproduce (the paper's
    // "does not perform as well as the optimizers in the SUN C and
    // Fortran compilers").
    auto oracleSchedule = [&](const InstSeq &seq) {
        InstSeq best;
        uint64_t best_cost = ~uint64_t(0);
        std::vector<Instruction> flat;
        for (const auto &sch : oracles) {
            InstSeq cand = sch->scheduleBlock(seq);
            flat.clear();
            for (const InstRef &r : cand)
                flat.push_back(r.inst);
            size_t once = flat.size();
            for (size_t i = 0; i < once; ++i)
                flat.push_back(flat[i]);
            uint64_t cost =
                machine::sequenceCycles(*opts.machine, flat);
            if (cost < best_cost) {
                best_cost = cost;
                best = std::move(cand);
            }
        }
        return best;
    };

    // Finalize every block's instruction sequence.
    struct OutBlock
    {
        InstSeq seq;
        uint32_t addr = 0;
        int targetBlock;
        int callFn;
        bool hasCti;
    };
    std::vector<std::vector<OutBlock>> outFns(fns.size());

    for (size_t fi = 0; fi < fns.size(); ++fi) {
        for (GenBlock &gb : fns[fi].blocks) {
            OutBlock ob;
            ob.targetBlock = gb.targetBlock;
            ob.callFn = gb.callFn;
            ob.hasCti = gb.hasCti;
            InstSeq seq = gb.body;
            if (gb.hasCti) {
                InstRef cti;
                cti.inst = gb.cti;
                seq.push_back(cti);
                if (gb.hasDelay) {
                    InstRef d;
                    d.inst = gb.delay;
                    seq.push_back(d);
                }
            }
            if (!oracles.empty()) {
                seq = oracleSchedule(seq);
            } else if (gb.hasCti && !gb.hasDelay) {
                InstRef nop;
                nop.inst = b::nop();
                seq.push_back(nop);
            }
            ob.seq = std::move(seq);
            outFns[fi].push_back(std::move(ob));
        }
    }

    // Lay out addresses.
    uint32_t cursor = exe::textBase;
    std::vector<uint32_t> fnAddr(fns.size());
    for (size_t fi = 0; fi < fns.size(); ++fi) {
        fnAddr[fi] = cursor;
        for (OutBlock &ob : outFns[fi]) {
            ob.addr = cursor;
            cursor += 4 * static_cast<uint32_t>(ob.seq.size());
        }
    }

    // Patch CTIs and emit.
    for (size_t fi = 0; fi < fns.size(); ++fi) {
        for (OutBlock &ob : outFns[fi]) {
            if (ob.hasCti) {
                size_t ci = ob.seq.size() - 2;
                if (!ob.seq[ci].inst.isCti())
                    panic("generator: CTI not in delay position");
                uint32_t cti_addr =
                    ob.addr + 4 * static_cast<uint32_t>(ci);
                uint32_t target;
                if (ob.callFn >= 0)
                    target = fnAddr[ob.callFn];
                else if (ob.targetBlock >= 0)
                    target = outFns[fi][ob.targetBlock].addr;
                else
                    target = 0;
                if (target)
                    ob.seq[ci].inst.disp =
                        (static_cast<int64_t>(target) -
                         static_cast<int64_t>(cti_addr)) / 4;
            }
            for (const InstRef &ref : ob.seq)
                xe.text.push_back(isa::encode(ref.inst));
        }
        uint32_t end = fi + 1 < fns.size() ? fnAddr[fi + 1] : cursor;
        xe.symbols.push_back(exe::Symbol{fns[fi].name, fnAddr[fi],
                                         end - fnAddr[fi], true});
    }
    xe.entry = fnAddr.back();  // main is last
    return std::move(xe);
}

exe::Executable
Builder::build()
{
    std::vector<unsigned> cost(spec.kernels);
    for (unsigned k = 0; k < spec.kernels; ++k) {
        unsigned per_call = 0;
        fns.push_back(makeKernel(k, per_call));
        cost[k] = per_call;
    }
    uint64_t per_outer = 8;
    for (unsigned k = 0; k < spec.kernels; ++k)
        per_outer += cost[k];
    uint64_t target = static_cast<uint64_t>(
        static_cast<double>(spec.dynTarget) * opts.scale);
    uint64_t outer = std::max<uint64_t>(1, target / per_outer);
    fns.push_back(makeMain(outer));
    return assemble();
}

} // namespace

exe::Executable
generate(const BenchmarkSpec &spec, const GenOptions &opts)
{
    return Builder(spec, opts).build();
}

} // namespace eel::workload
