/**
 * @file
 * Synthetic SPEC95 benchmark specifications. Real SPEC95 binaries are
 * unavailable (the hardware/data gate, DESIGN.md §2); each benchmark
 * is replaced by a generated program matching the paper's reported
 * per-benchmark dynamic basic block size and a plausible instruction
 * mix for its domain. Tables 1/2 (UltraSPARC) and Table 3
 * (SuperSPARC) report different block sizes — the benchmarks were
 * compiled separately per machine — so the specs are parameterized
 * by target machine.
 */

#ifndef EEL_WORKLOAD_SPEC_HH
#define EEL_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eel::workload {

struct BenchmarkSpec
{
    std::string name;
    bool fp = false;          ///< CFP95 member
    double avgBlockSize = 3;  ///< target dynamic BB size (paper)
    double loadFrac = 0.22;   ///< fraction of body ops that load
    double storeFrac = 0.08;
    double fpFrac = 0.0;      ///< fraction of body ops that are fp
    /** Probability an operand is the most recent result (chain
     *  tightness): high for pointer-chasing integer codes, low for
     *  unrolled vectorizable fp loops. */
    double serialProb = 0.5;
    /**
     * Fraction of body ops that form loop-carried register
     *  recurrences: `op acc, acc, src` through an accumulator that
     *  persists across iterations, so the dependence cycles back
     *  over the loop backedge. 0 (the default) emits no recurrence
     *  ops and leaves generated programs byte-identical to specs
     *  predating the knob.
     */
    double recurrenceFrac = 0.0;
    /**
     * Loop-carried dependences through memory: each slot emits a
     * load-modify-store of one fixed data address per loop
     * iteration, a recurrence the scheduler can only see via alias
     * analysis. 0 (the default) changes nothing.
     */
    unsigned memRecurrences = 0;
    uint64_t dynTarget = 1500000;  ///< dynamic instructions at scale 1
    /** Kernel routines to generate (static footprint knob). */
    unsigned kernels = 3;
    uint64_t seed = 1;
};

/**
 * The 8 CINT95 + 10 CFP95 benchmarks with the dynamic block sizes
 * the paper reports for the given machine ("ultrasparc" /
 * "hypersparc" use the Table 1 sizes, "supersparc" the Table 3
 * sizes).
 */
std::vector<BenchmarkSpec> spec95(std::string_view machine);

} // namespace eel::workload

#endif // EEL_WORKLOAD_SPEC_HH
