/**
 * @file
 * Synthetic benchmark generator: turns a BenchmarkSpec into a runnable
 * XEF executable whose dynamic behaviour (block size, instruction
 * mix, ILP) matches the spec. Generated code is pre-scheduled by an
 * "oracle compiler" pass — the list scheduler armed with the exact
 * target machine model and perfect alias information (InstRef memory
 * tags) — to mimic the aggressively optimized Sun compiler output
 * the paper instruments (DESIGN.md §2).
 */

#ifndef EEL_WORKLOAD_GENERATOR_HH
#define EEL_WORKLOAD_GENERATOR_HH

#include "src/exe/executable.hh"
#include "src/machine/model.hh"
#include "src/workload/spec.hh"

namespace eel::workload {

struct GenOptions
{
    /** Multiplier on the spec's dynamic instruction target. */
    double scale = 1.0;
    /** Run the oracle pre-scheduling pass (a real compiler would). */
    bool oracleSchedule = true;
    /** Machine the oracle schedules for; required when scheduling. */
    const machine::MachineModel *machine = nullptr;
};

/** Generate the executable for one benchmark spec. */
exe::Executable generate(const BenchmarkSpec &spec,
                         const GenOptions &opts);

} // namespace eel::workload

#endif // EEL_WORKLOAD_GENERATOR_HH
