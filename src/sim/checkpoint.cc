#include "src/sim/checkpoint.hh"

#include <algorithm>
#include <cstring>

#include "src/support/logging.hh"

namespace eel::sim {

MemDelta
MemDelta::diff(const std::vector<uint8_t> &ref,
               const std::vector<uint8_t> &cur)
{
    if (ref.size() != cur.size())
        fatal("memdelta: image size mismatch (%zu vs %zu)",
              ref.size(), cur.size());
    MemDelta d;
    for (size_t off = 0; off < cur.size(); off += pageBytes) {
        size_t len = std::min<size_t>(pageBytes, cur.size() - off);
        if (std::memcmp(ref.data() + off, cur.data() + off, len) != 0)
            d.pages.push_back(
                {static_cast<uint32_t>(off),
                 {cur.begin() + off, cur.begin() + off + len}});
    }
    return d;
}

void
MemDelta::apply(std::vector<uint8_t> &mem) const
{
    for (const Page &p : pages) {
        if (p.offset + p.bytes.size() > mem.size())
            fatal("memdelta: page at 0x%x overruns image", p.offset);
        std::memcpy(mem.data() + p.offset, p.bytes.data(),
                    p.bytes.size());
    }
}

uint64_t
MemDelta::bytes() const
{
    uint64_t n = 0;
    for (const Page &p : pages)
        n += p.bytes.size() + sizeof(Page);
    return n;
}

uint64_t
CheckpointLog::bytes() const
{
    uint64_t n = 0;
    for (const Checkpoint &cp : checkpoints)
        n += cp.dataDelta.bytes() + cp.stackDelta.bytes() +
             cp.state.wins.size() * sizeof(uint32_t) +
             cp.warmupPcs.size() * sizeof(uint32_t) +
             sizeof(Checkpoint);
    return n;
}

namespace {

/** Rolling buffer of the last N retired pcs. */
struct RingSink final
{
    std::vector<uint32_t> ring;
    size_t head = 0;
    bool wrapped = false;

    explicit RingSink(unsigned n) { ring.assign(n ? n : 1, 0); }

    void
    retire(uint32_t pc, const isa::Instruction &)
    {
        ring[head] = pc;
        if (++head == ring.size()) {
            head = 0;
            wrapped = true;
        }
    }

    std::vector<uint32_t>
    ordered() const
    {
        std::vector<uint32_t> out;
        if (wrapped)
            out.insert(out.end(), ring.begin() + head, ring.end());
        out.insert(out.end(), ring.begin(), ring.begin() + head);
        return out;
    }
};

} // namespace

std::vector<uint8_t>
initialDataImage(const exe::Executable &x)
{
    std::vector<uint8_t> mem(x.bssEnd() - exe::dataBase, 0);
    x.data.copyTo(mem.data());
    return mem;
}

CheckpointLog
captureCheckpoints(const exe::Executable &x,
                   const CheckpointOptions &opts,
                   std::shared_ptr<const Emulator::DecodedText> text)
{
    if (opts.interval == 0)
        fatal("checkpoint: interval must be nonzero");
    if (!text)
        text = Emulator::decodeText(x);

    CheckpointLog log;
    log.interval = opts.interval;

    Emulator emu(x, opts.emu, text);
    RingSink sink(opts.warmup);

    const std::vector<uint8_t> data0 = initialDataImage(x);
    const std::vector<uint8_t> stack0(opts.emu.stackBytes, 0);

    uint64_t cap = opts.emu.maxInstructions;
    for (;;) {
        uint64_t step = std::min(opts.interval, cap);
        RunResult r = emu.run(sink, step);
        log.functional.instructions += r.instructions;
        log.functional.output += r.output;
        log.functional.exitCode = r.exitCode;
        log.functional.exited = r.exited;
        cap -= r.instructions;
        // Stop without a trailing checkpoint: the final shard ends
        // at program exit (or the instruction cap), not at a cut.
        if (r.exited || r.instructions < step || cap == 0)
            break;
        Checkpoint cp;
        cp.state = emu.saveState(/*withMemory=*/false);
        cp.dataDelta = MemDelta::diff(data0, emu.dataImage());
        cp.stackDelta = MemDelta::diff(stack0, emu.stackImage());
        cp.warmupPcs = sink.ordered();
        log.checkpoints.push_back(std::move(cp));
    }
    return log;
}

Emulator::State
materializeState(const exe::Executable &x,
                 const Emulator::Config &cfg, const Checkpoint &cp)
{
    Emulator::State s = cp.state;
    s.dataMem = initialDataImage(x);
    cp.dataDelta.apply(s.dataMem);
    s.stackMem.assign(cfg.stackBytes, 0);
    cp.stackDelta.apply(s.stackMem);
    return s;
}

void
restoreCheckpoint(Emulator &emu, const Checkpoint &cp)
{
    emu.restoreState(cp.state);  // bare state: keeps emu's memory
    cp.dataDelta.apply(emu.dataImageMut());
    cp.stackDelta.apply(emu.stackImageMut());
}

} // namespace eel::sim
