#include "src/sim/emulator.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "src/isa/opcodes.hh"
#include "src/isa/registers.hh"
#include "src/support/logging.hh"

namespace eel::sim {

using isa::Instruction;
using isa::Op;

Emulator::Emulator(const exe::Executable &x)
    : Emulator(x, Config{})
{}

Emulator::Emulator(const exe::Executable &x, Config cfg)
    : x(x), cfg(cfg)
{
    decoded.reserve(x.text.size());
    for (uint32_t w : x.text)
        decoded.push_back(isa::decode(w));

    wins.assign(16ull * cfg.windows, 0);

    dataLo = exe::dataBase;
    dataHi = x.bssEnd();
    dataMem.assign(dataHi - dataLo, 0);
    std::memcpy(dataMem.data(), x.data.data(), x.data.size());

    stackHi = 0x80000000u;
    stackLo = stackHi - cfg.stackBytes;
    stackMem.assign(cfg.stackBytes, 0);

    // Conventional initial stack pointer, 8-byte aligned with a
    // little headroom.
    setReg(isa::reg::sp, stackHi - 64);
}

uint32_t
Emulator::reg(unsigned r) const
{
    if (r < 8)
        return globals[r];
    unsigned w = cwp;
    if (r < 16)
        return wins[16 * w + (r - 8)];            // outs
    if (r < 24)
        return wins[16 * w + 8 + (r - 16)];       // locals
    unsigned up = (cwp + 1) % cfg.windows;
    return wins[16 * up + (r - 24)];              // ins = caller outs
}

void
Emulator::setReg(unsigned r, uint32_t v)
{
    if (r == 0)
        return;
    if (r < 8) {
        globals[r] = v;
    } else if (r < 16) {
        wins[16 * cwp + (r - 8)] = v;
    } else if (r < 24) {
        wins[16 * cwp + 8 + (r - 16)] = v;
    } else {
        unsigned up = (cwp + 1) % cfg.windows;
        wins[16 * up + (r - 24)] = v;
    }
}

uint8_t *
Emulator::memPtr(uint32_t addr, unsigned bytes)
{
    if (addr >= dataLo && addr + bytes <= dataHi)
        return &dataMem[addr - dataLo];
    if (addr >= stackLo && addr + bytes <= stackHi)
        return &stackMem[addr - stackLo];
    fatal("emulator: memory access at 0x%x (%u bytes) outside data, "
          "bss, and stack", addr, bytes);
}

uint32_t
Emulator::load(uint32_t addr, unsigned bytes, bool sign_extend)
{
    if (addr % bytes != 0)
        fatal("emulator: misaligned %u-byte load at 0x%x", bytes,
              addr);
    const uint8_t *p = memPtr(addr, bytes);
    // Big-endian, as SPARC is.
    uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v = (v << 8) | p[i];
    if (sign_extend && bytes < 4) {
        unsigned shift = 32 - 8 * bytes;
        v = static_cast<uint32_t>(
            static_cast<int32_t>(v << shift) >> shift);
    }
    return v;
}

void
Emulator::store(uint32_t addr, unsigned bytes, uint32_t value)
{
    if (addr % bytes != 0)
        fatal("emulator: misaligned %u-byte store at 0x%x", bytes,
              addr);
    uint8_t *p = memPtr(addr, bytes);
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<uint8_t>(value >> (8 * (bytes - 1 - i)));
}

uint32_t
Emulator::readWord(uint32_t addr) const
{
    return const_cast<Emulator *>(this)->load(addr, 4, false);
}

void
Emulator::writeWord(uint32_t addr, uint32_t value)
{
    store(addr, 4, value);
}

void
Emulator::setIccLogic(uint32_t r)
{
    icc = ((r >> 31) ? 8 : 0) | (r == 0 ? 4 : 0);
}

void
Emulator::setIccAdd(uint32_t a, uint32_t b, uint32_t r)
{
    bool n = r >> 31;
    bool z = r == 0;
    bool v = (~(a ^ b) & (a ^ r)) >> 31;
    bool c = r < a;
    icc = (n ? 8 : 0) | (z ? 4 : 0) | (v ? 2 : 0) | (c ? 1 : 0);
}

void
Emulator::setIccSub(uint32_t a, uint32_t b, uint32_t r)
{
    bool n = r >> 31;
    bool z = r == 0;
    bool v = ((a ^ b) & (a ^ r)) >> 31;
    bool c = a < b;  // borrow
    icc = (n ? 8 : 0) | (z ? 4 : 0) | (v ? 2 : 0) | (c ? 1 : 0);
}

bool
Emulator::iccCond(unsigned c) const
{
    bool n = icc & 8, z = icc & 4, v = icc & 2, cy = icc & 1;
    using namespace isa::cond;
    switch (c & 0xf) {
      case a:   return true;
      case isa::cond::n: return false;
      case e:   return z;
      case ne:  return !z;
      case l:   return n != v;
      case ge:  return n == v;
      case le:  return z || (n != v);
      case g:   return !(z || (n != v));
      case leu: return cy || z;
      case gu:  return !(cy || z);
      case cs:  return cy;
      case cc:  return !cy;
      case neg: return n;
      case pos: return !n;
      case vs:  return v;
      case vc:  return !v;
    }
    return false;
}

bool
Emulator::fccCond(unsigned c) const
{
    bool e = fcc == 0, l = fcc == 1, g = fcc == 2, u = fcc == 3;
    using namespace isa::fcond;
    switch (c & 0xf) {
      case a:   return true;
      case isa::fcond::n: return false;
      case isa::fcond::u: return u;
      case isa::fcond::g: return g;
      case ug:  return u || g;
      case isa::fcond::l: return l;
      case ul:  return u || l;
      case lg:  return l || g;
      case ne:  return l || g || u;
      case isa::fcond::e: return e;
      case ue:  return e || u;
      case ge:  return e || g;
      case uge: return e || g || u;
      case le:  return e || l;
      case ule: return e || l || u;
      case o:   return e || l || g;
    }
    return false;
}

uint64_t
Emulator::fpairGet(unsigned r) const
{
    unsigned e = r & ~1u;
    return (static_cast<uint64_t>(fregs[e]) << 32) | fregs[e | 1];
}

void
Emulator::fpairSet(unsigned r, uint64_t v)
{
    unsigned e = r & ~1u;
    fregs[e] = static_cast<uint32_t>(v >> 32);
    fregs[e | 1] = static_cast<uint32_t>(v);
}

RunResult
Emulator::run(TraceSink *sink)
{
    RunResult res;
    uint32_t pc = x.entry;
    uint32_t npc = pc + 4;
    bool annul_next = false;

    auto src2 = [&](const Instruction &in) -> uint32_t {
        return in.iflag ? static_cast<uint32_t>(in.simm13)
                        : reg(in.rs2);
    };
    auto f32 = [](uint32_t bits) { return std::bit_cast<float>(bits); };
    auto b32 = [](float f) { return std::bit_cast<uint32_t>(f); };
    auto f64 = [](uint64_t bits) {
        return std::bit_cast<double>(bits);
    };
    auto b64 = [](double d) { return std::bit_cast<uint64_t>(d); };

    while (res.instructions < cfg.maxInstructions) {
        if (!x.inText(pc))
            fatal("emulator: pc 0x%x outside text", pc);
        uint32_t cur_pc = pc;
        const Instruction &in = decoded[x.textIndex(pc)];

        if (annul_next) {
            annul_next = false;
            pc = npc;
            npc += 4;
            continue;
        }

        if (in.op == Op::Invalid)
            fatal("emulator: invalid instruction at 0x%x", cur_pc);

        ++res.instructions;
        if (sink)
            sink->retire(cur_pc, in);

        uint32_t next_pc = npc;
        uint32_t next_npc = npc + 4;

        switch (in.op) {
          case Op::Add:
            setReg(in.rd, reg(in.rs1) + src2(in));
            break;
          case Op::Addcc: {
            uint32_t a = reg(in.rs1), b = src2(in), r = a + b;
            setReg(in.rd, r);
            setIccAdd(a, b, r);
            break;
          }
          case Op::Sub:
            setReg(in.rd, reg(in.rs1) - src2(in));
            break;
          case Op::Subcc: {
            uint32_t a = reg(in.rs1), b = src2(in), r = a - b;
            setReg(in.rd, r);
            setIccSub(a, b, r);
            break;
          }
          case Op::And:
            setReg(in.rd, reg(in.rs1) & src2(in));
            break;
          case Op::Andcc: {
            uint32_t r = reg(in.rs1) & src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Or:
            setReg(in.rd, reg(in.rs1) | src2(in));
            break;
          case Op::Orcc: {
            uint32_t r = reg(in.rs1) | src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Xor:
            setReg(in.rd, reg(in.rs1) ^ src2(in));
            break;
          case Op::Xorcc: {
            uint32_t r = reg(in.rs1) ^ src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Sll:
            setReg(in.rd, reg(in.rs1) << (src2(in) & 31));
            break;
          case Op::Srl:
            setReg(in.rd, reg(in.rs1) >> (src2(in) & 31));
            break;
          case Op::Sra:
            setReg(in.rd, static_cast<uint32_t>(
                static_cast<int32_t>(reg(in.rs1)) >>
                (src2(in) & 31)));
            break;
          case Op::Umul: {
            uint64_t p = static_cast<uint64_t>(reg(in.rs1)) *
                         src2(in);
            setReg(in.rd, static_cast<uint32_t>(p));
            yreg = static_cast<uint32_t>(p >> 32);
            break;
          }
          case Op::Smul: {
            int64_t p = static_cast<int64_t>(
                            static_cast<int32_t>(reg(in.rs1))) *
                        static_cast<int32_t>(src2(in));
            setReg(in.rd, static_cast<uint32_t>(p));
            yreg = static_cast<uint32_t>(
                static_cast<uint64_t>(p) >> 32);
            break;
          }
          case Op::Udiv: {
            uint64_t dividend = (static_cast<uint64_t>(yreg) << 32) |
                                reg(in.rs1);
            uint32_t divisor = src2(in);
            if (divisor == 0)
                fatal("emulator: udiv by zero at 0x%x", cur_pc);
            uint64_t q = dividend / divisor;
            setReg(in.rd, q > 0xffffffffull
                              ? 0xffffffffu
                              : static_cast<uint32_t>(q));
            break;
          }
          case Op::Sdiv: {
            int64_t dividend = static_cast<int64_t>(
                (static_cast<uint64_t>(yreg) << 32) | reg(in.rs1));
            int32_t divisor = static_cast<int32_t>(src2(in));
            if (divisor == 0)
                fatal("emulator: sdiv by zero at 0x%x", cur_pc);
            int64_t q = dividend / divisor;
            if (q > 0x7fffffffll)
                q = 0x7fffffffll;
            if (q < -0x80000000ll)
                q = -0x80000000ll;
            setReg(in.rd, static_cast<uint32_t>(q));
            break;
          }
          case Op::Rdy:
            setReg(in.rd, yreg);
            break;
          case Op::Wry:
            yreg = reg(in.rs1) ^ src2(in);
            break;
          case Op::Sethi:
            setReg(in.rd, in.imm22 << 10);
            break;
          case Op::Nop:
            break;
          case Op::Save: {
            uint32_t v = reg(in.rs1) + src2(in);
            if (++winDepth >= static_cast<int>(cfg.windows) - 1)
                fatal("emulator: register window overflow (depth %d); "
                      "increase Config::windows", winDepth);
            cwp = (cwp + cfg.windows - 1) % cfg.windows;
            setReg(in.rd, v);
            break;
          }
          case Op::Restore: {
            uint32_t v = reg(in.rs1) + src2(in);
            if (--winDepth < -1)
                fatal("emulator: register window underflow at 0x%x",
                      cur_pc);
            cwp = (cwp + 1) % cfg.windows;
            setReg(in.rd, v);
            break;
          }
          case Op::Bicc: {
            bool taken = iccCond(in.cond);
            if (taken)
                next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            if (in.annul && (!taken || in.cond == isa::cond::a))
                annul_next = true;
            break;
          }
          case Op::Fbfcc: {
            bool taken = fccCond(in.cond);
            if (taken)
                next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            if (in.annul && (!taken || in.cond == isa::fcond::a))
                annul_next = true;
            break;
          }
          case Op::Call:
            setReg(isa::reg::o7, cur_pc);
            next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            break;
          case Op::Jmpl: {
            uint32_t target = reg(in.rs1) + src2(in);
            setReg(in.rd, cur_pc);
            if (target & 3)
                fatal("emulator: misaligned jmpl target 0x%x", target);
            next_npc = target;
            break;
          }
          case Op::Ticc:
            if (iccCond(in.cond)) {
                switch (in.simm13) {
                  case isa::trap::exit_prog:
                    res.exitCode = static_cast<int>(reg(isa::reg::o0));
                    res.exited = true;
                    return res;
                  case isa::trap::put_int:
                    res.output += strfmt(
                        "%d\n",
                        static_cast<int32_t>(reg(isa::reg::o0)));
                    break;
                  case isa::trap::put_char:
                    res.output.push_back(static_cast<char>(
                        reg(isa::reg::o0) & 0xff));
                    break;
                  case isa::trap::sink:
                    break;
                  default:
                    fatal("emulator: unknown trap %d at 0x%x",
                          in.simm13, cur_pc);
                }
            }
            break;

          case Op::Ld:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 4, false));
            break;
          case Op::Ldub:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 1, false));
            break;
          case Op::Ldsb:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 1, true));
            break;
          case Op::Lduh:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 2, false));
            break;
          case Op::Ldsh:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 2, true));
            break;
          case Op::Ldd: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned ldd at 0x%x", cur_pc);
            setReg(in.rd & ~1u, load(a, 4, false));
            setReg((in.rd & ~1u) | 1, load(a + 4, 4, false));
            break;
          }
          case Op::St:
            store(reg(in.rs1) + src2(in), 4, reg(in.rd));
            break;
          case Op::Stb:
            store(reg(in.rs1) + src2(in), 1, reg(in.rd));
            break;
          case Op::Sth:
            store(reg(in.rs1) + src2(in), 2, reg(in.rd));
            break;
          case Op::Std: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned std at 0x%x", cur_pc);
            store(a, 4, reg(in.rd & ~1u));
            store(a + 4, 4, reg((in.rd & ~1u) | 1));
            break;
          }
          case Op::Ldf:
            fregs[in.rd] = load(reg(in.rs1) + src2(in), 4, false);
            break;
          case Op::Lddf: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned lddf at 0x%x", cur_pc);
            fregs[in.rd & ~1u] = load(a, 4, false);
            fregs[(in.rd & ~1u) | 1] = load(a + 4, 4, false);
            break;
          }
          case Op::Stf:
            store(reg(in.rs1) + src2(in), 4, fregs[in.rd]);
            break;
          case Op::Stdf: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned stdf at 0x%x", cur_pc);
            store(a, 4, fregs[in.rd & ~1u]);
            store(a + 4, 4, fregs[(in.rd & ~1u) | 1]);
            break;
          }

          case Op::Fadds:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) + f32(fregs[in.rs2]));
            break;
          case Op::Fsubs:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) - f32(fregs[in.rs2]));
            break;
          case Op::Fmuls:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) * f32(fregs[in.rs2]));
            break;
          case Op::Fdivs:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) / f32(fregs[in.rs2]));
            break;
          case Op::Faddd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) + f64(fpairGet(in.rs2))));
            break;
          case Op::Fsubd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) - f64(fpairGet(in.rs2))));
            break;
          case Op::Fmuld:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) * f64(fpairGet(in.rs2))));
            break;
          case Op::Fdivd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) / f64(fpairGet(in.rs2))));
            break;
          case Op::Fsqrts:
            fregs[in.rd] = b32(std::sqrt(f32(fregs[in.rs2])));
            break;
          case Op::Fsqrtd:
            fpairSet(in.rd, b64(std::sqrt(f64(fpairGet(in.rs2)))));
            break;
          case Op::Fmovs:
            fregs[in.rd] = fregs[in.rs2];
            break;
          case Op::Fnegs:
            fregs[in.rd] = fregs[in.rs2] ^ 0x80000000u;
            break;
          case Op::Fabss:
            fregs[in.rd] = fregs[in.rs2] & 0x7fffffffu;
            break;
          case Op::Fitos:
            fregs[in.rd] = b32(static_cast<float>(
                static_cast<int32_t>(fregs[in.rs2])));
            break;
          case Op::Fitod:
            fpairSet(in.rd, b64(static_cast<double>(
                static_cast<int32_t>(fregs[in.rs2]))));
            break;
          case Op::Fstoi:
            fregs[in.rd] = static_cast<uint32_t>(
                static_cast<int32_t>(f32(fregs[in.rs2])));
            break;
          case Op::Fdtoi:
            fregs[in.rd] = static_cast<uint32_t>(
                static_cast<int32_t>(f64(fpairGet(in.rs2))));
            break;
          case Op::Fstod:
            fpairSet(in.rd, b64(static_cast<double>(
                f32(fregs[in.rs2]))));
            break;
          case Op::Fdtos:
            fregs[in.rd] = b32(static_cast<float>(
                f64(fpairGet(in.rs2))));
            break;
          case Op::Fcmps: {
            float a = f32(fregs[in.rs1]), b = f32(fregs[in.rs2]);
            fcc = (a != a || b != b) ? 3 : a < b ? 1 : a > b ? 2 : 0;
            break;
          }
          case Op::Fcmpd: {
            double a = f64(fpairGet(in.rs1)), b = f64(fpairGet(in.rs2));
            fcc = (a != a || b != b) ? 3 : a < b ? 1 : a > b ? 2 : 0;
            break;
          }

          case Op::Invalid:
          case Op::NumOps:
            fatal("emulator: invalid opcode at 0x%x", cur_pc);
        }

        pc = next_pc;
        npc = next_npc;
    }
    return res;
}

} // namespace eel::sim
