#include "src/sim/emulator.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "src/isa/opcodes.hh"
#include "src/isa/registers.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/support/logging.hh"

namespace eel::sim {

using isa::Instruction;
using isa::Op;

namespace {

/**
 * (op, iflag) -> dispatch token, built once from the same X-macro
 * lists the interpreter bodies expand. Plain ops ignore iflag; ops
 * absent from both lists (only Op::Invalid) map to Tok_Invalid.
 */
struct TokenTable
{
    uint8_t t[2 * isa::numOps];
    TokenTable()
    {
        for (uint8_t &v : t)
            v = Tok_Invalid;
#define EEL_EMU_T(op)                                                 \
    t[2 * static_cast<unsigned>(Op::op) + 0] = Tok_##op##_r;          \
    t[2 * static_cast<unsigned>(Op::op) + 1] = Tok_##op##_i;
        EEL_EMU_SRC2_OPS(EEL_EMU_T)
#undef EEL_EMU_T
#define EEL_EMU_T(op)                                                 \
    t[2 * static_cast<unsigned>(Op::op) + 0] = Tok_##op;              \
    t[2 * static_cast<unsigned>(Op::op) + 1] = Tok_##op;
        EEL_EMU_PLAIN_OPS(EEL_EMU_T)
#undef EEL_EMU_T
    }
};

const TokenTable tokenTable;

} // namespace

uint8_t
emulatorToken(const Instruction &in)
{
    return tokenTable.t[2 * static_cast<unsigned>(in.op) +
                        (in.iflag ? 1 : 0)];
}

namespace detail {

void
noteThreadedRetires(uint64_t n)
{
    static obs::Metric mHits("dispatch.threaded_hits",
                             obs::MetricKind::Counter);
    mHits.add(n);
}

} // namespace detail

std::shared_ptr<const Emulator::DecodedText>
Emulator::decodeText(const exe::Executable &x)
{
    obs::Span span("emu.decode");
    auto text = std::make_shared<DecodedText>();
    text->insts.reserve(x.text.size());
    text->tokens.reserve(x.text.size());
    for (uint32_t w : x.text) {
        Instruction in = isa::decode(w);
        text->tokens.push_back(emulatorToken(in));
        text->insts.push_back(in);
    }
    return text;
}

std::shared_ptr<const Emulator::DecodedText>
Emulator::decodeText(const exe::Executable &x, exe::SectionStore &store)
{
    static obs::Metric mHits("emu.decode_memo_hits",
                             obs::MetricKind::Counter);
    static obs::Metric mMisses("emu.decode_memo_misses",
                               obs::MetricKind::Counter);
    bool made = false;
    std::shared_ptr<void> v = store.cachedView(
        x.text.chunkRefs(), [&x, &made]() -> std::shared_ptr<void> {
            made = true;
            return std::const_pointer_cast<DecodedText>(
                std::shared_ptr<const DecodedText>(decodeText(x)));
        });
    if (made)
        mMisses.add();
    else
        mHits.add();
    auto cached = std::static_pointer_cast<const DecodedText>(v);
    // Identical pages but a different word count (possible only when
    // a text ends in zero words): the view is not reusable.
    if (cached->size() != x.text.size())
        return decodeText(x);
    return cached;
}

Emulator::Emulator(const exe::Executable &x)
    : Emulator(x, Config{})
{}

Emulator::Emulator(const exe::Executable &x, Config cfg)
    : Emulator(x, cfg, nullptr)
{}

Emulator::Emulator(const exe::Executable &x, Config cfg,
                   std::shared_ptr<const DecodedText> text)
    : x(x), cfg(cfg),
      decoded(text ? std::move(text) : decodeText(x))
{
    if (decoded->size() != x.text.size())
        fatal("emulator: pre-decoded text does not match executable");

    wins.assign(16ull * cfg.windows, 0);
    setWindow(0);

    dataLo = exe::dataBase;
    dataHi = x.bssEnd();
    dataMem.assign(dataHi - dataLo, 0);
    x.data.copyTo(dataMem.data());

    stackHi = 0x80000000u;
    stackLo = stackHi - cfg.stackBytes;
    stackMem.assign(cfg.stackBytes, 0);

    // Conventional initial stack pointer, 8-byte aligned with a
    // little headroom.
    setReg(isa::reg::sp, stackHi - 64);

    curPc = x.entry;
    curNpc = curPc + 4;
}

const uint8_t *
Emulator::memPtr(uint32_t addr, unsigned bytes) const
{
    if (addr >= dataLo && addr + bytes <= dataHi)
        return &dataMem[addr - dataLo];
    if (addr >= stackLo && addr + bytes <= stackHi)
        return &stackMem[addr - stackLo];
    fatal("emulator: memory access at 0x%x (%u bytes) outside data, "
          "bss, and stack", addr, bytes);
}

uint8_t *
Emulator::memPtr(uint32_t addr, unsigned bytes)
{
    return const_cast<uint8_t *>(
        static_cast<const Emulator *>(this)->memPtr(addr, bytes));
}

uint32_t
Emulator::load(uint32_t addr, unsigned bytes, bool sign_extend) const
{
    if (addr % bytes != 0)
        fatal("emulator: misaligned %u-byte load at 0x%x", bytes,
              addr);
    const uint8_t *p = memPtr(addr, bytes);
    // Big-endian, as SPARC is.
    uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v = (v << 8) | p[i];
    if (sign_extend && bytes < 4) {
        unsigned shift = 32 - 8 * bytes;
        v = static_cast<uint32_t>(
            static_cast<int32_t>(v << shift) >> shift);
    }
    return v;
}

void
Emulator::store(uint32_t addr, unsigned bytes, uint32_t value)
{
    if (addr % bytes != 0)
        fatal("emulator: misaligned %u-byte store at 0x%x", bytes,
              addr);
    uint8_t *p = memPtr(addr, bytes);
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<uint8_t>(value >> (8 * (bytes - 1 - i)));
}

uint32_t
Emulator::readWord(uint32_t addr) const
{
    return load(addr, 4, false);
}

void
Emulator::writeWord(uint32_t addr, uint32_t value)
{
    store(addr, 4, value);
}

void
Emulator::setIccLogic(uint32_t r)
{
    icc = ((r >> 31) ? 8 : 0) | (r == 0 ? 4 : 0);
}

void
Emulator::setIccAdd(uint32_t a, uint32_t b, uint32_t r)
{
    bool n = r >> 31;
    bool z = r == 0;
    bool v = (~(a ^ b) & (a ^ r)) >> 31;
    bool c = r < a;
    icc = (n ? 8 : 0) | (z ? 4 : 0) | (v ? 2 : 0) | (c ? 1 : 0);
}

void
Emulator::setIccSub(uint32_t a, uint32_t b, uint32_t r)
{
    bool n = r >> 31;
    bool z = r == 0;
    bool v = ((a ^ b) & (a ^ r)) >> 31;
    bool c = a < b;  // borrow
    icc = (n ? 8 : 0) | (z ? 4 : 0) | (v ? 2 : 0) | (c ? 1 : 0);
}

bool
Emulator::iccCond(unsigned c) const
{
    bool n = icc & 8, z = icc & 4, v = icc & 2, cy = icc & 1;
    using namespace isa::cond;
    switch (c & 0xf) {
      case a:   return true;
      case isa::cond::n: return false;
      case e:   return z;
      case ne:  return !z;
      case l:   return n != v;
      case ge:  return n == v;
      case le:  return z || (n != v);
      case g:   return !(z || (n != v));
      case leu: return cy || z;
      case gu:  return !(cy || z);
      case cs:  return cy;
      case cc:  return !cy;
      case neg: return n;
      case pos: return !n;
      case vs:  return v;
      case vc:  return !v;
    }
    return false;
}

bool
Emulator::fccCond(unsigned c) const
{
    bool e = fcc == 0, l = fcc == 1, g = fcc == 2, u = fcc == 3;
    using namespace isa::fcond;
    switch (c & 0xf) {
      case a:   return true;
      case isa::fcond::n: return false;
      case isa::fcond::u: return u;
      case isa::fcond::g: return g;
      case ug:  return u || g;
      case isa::fcond::l: return l;
      case ul:  return u || l;
      case lg:  return l || g;
      case ne:  return l || g || u;
      case isa::fcond::e: return e;
      case ue:  return e || u;
      case ge:  return e || g;
      case uge: return e || g || u;
      case le:  return e || l;
      case ule: return e || l || u;
      case o:   return e || l || g;
    }
    return false;
}

uint64_t
Emulator::fpairGet(unsigned r) const
{
    unsigned e = r & ~1u;
    return (static_cast<uint64_t>(fregs[e]) << 32) | fregs[e | 1];
}

void
Emulator::fpairSet(unsigned r, uint64_t v)
{
    unsigned e = r & ~1u;
    fregs[e] = static_cast<uint32_t>(v >> 32);
    fregs[e | 1] = static_cast<uint32_t>(v);
}

Emulator::State
Emulator::saveState(bool withMemory) const
{
    State s;
    s.wins = wins;
    for (unsigned r = 0; r < 8; ++r)
        s.globals[r] = globals[r];
    for (unsigned r = 0; r < 32; ++r)
        s.fpRegs[r] = fregs[r];
    s.cwp = cwp;
    s.winDepth = winDepth;
    s.icc = icc;
    s.fcc = fcc;
    s.y = yreg;
    if (withMemory) {
        s.dataMem = dataMem;
        s.stackMem = stackMem;
    }
    s.pc = curPc;
    s.npc = curNpc;
    s.annul = curAnnul;
    s.exited = hasExited;
    s.exitCode = savedExitCode;
    s.retired = totalRetired;
    return s;
}

void
Emulator::restoreState(const State &s)
{
    if (s.wins.size() != wins.size())
        fatal("emulator: restoreState window depth mismatch "
              "(%zu slots vs %zu)", s.wins.size(), wins.size());
    if (!s.dataMem.empty() && s.dataMem.size() != dataMem.size())
        fatal("emulator: restoreState data image size mismatch");
    if (!s.stackMem.empty() && s.stackMem.size() != stackMem.size())
        fatal("emulator: restoreState stack image size mismatch");
    wins = s.wins;
    for (unsigned r = 0; r < 8; ++r)
        globals[r] = s.globals[r];
    for (unsigned r = 0; r < 32; ++r)
        fregs[r] = s.fpRegs[r];
    setWindow(s.cwp);
    winDepth = s.winDepth;
    icc = s.icc;
    fcc = s.fcc;
    yreg = s.y;
    if (!s.dataMem.empty())
        dataMem = s.dataMem;
    if (!s.stackMem.empty())
        stackMem = s.stackMem;
    curPc = s.pc;
    curNpc = s.npc;
    curAnnul = s.annul;
    hasExited = s.exited;
    savedExitCode = s.exitCode;
    totalRetired = s.retired;
}

Emulator::ArchSnapshot
Emulator::snapshot() const
{
    ArchSnapshot s;
    for (unsigned r = 0; r < 32; ++r) {
        s.intRegs[r] = reg(r);
        s.fpRegs[r] = fregs[r];
    }
    s.icc = icc;
    s.fcc = fcc;
    s.y = yreg;
    s.dataMem = dataMem;
    s.stackMem = stackMem;
    return s;
}

bool
Emulator::ArchSnapshot::equalTo(const ArchSnapshot &o,
                                bool ignoreScratch) const
{
    for (unsigned r = 0; r < 32; ++r) {
        // %g6/%g7: reserved editor scratch. %o7/%i7: return
        // addresses — code addresses differ between layouts.
        if (ignoreScratch &&
            (r == 6 || r == 7 || r == 15 || r == 31))
            continue;
        if (intRegs[r] != o.intRegs[r])
            return false;
    }
    for (unsigned r = 0; r < 32; ++r)
        if (fpRegs[r] != o.fpRegs[r])
            return false;
    return icc == o.icc && fcc == o.fcc && y == o.y &&
           dataMem == o.dataMem && stackMem == o.stackMem;
}

RunResult
Emulator::run(TraceSink *sink)
{
    if (!sink) {
        NullSink null;
        return run(null);
    }
    // Monomorphize the loop on a thin forwarding sink; the virtual
    // call per retire remains, but the loop body is shared with the
    // devirtualized instantiations.
    struct Forward final
    {
        TraceSink *s;
        void
        retire(uint32_t pc, const isa::Instruction &inst)
        {
            s->retire(pc, inst);
        }
    } fwd{sink};
    return run(fwd);
}

} // namespace eel::sim
