/**
 * @file
 * Checkpoint capture for sharded simulation.
 *
 * One benchmark's timing simulation is bounded by the serial
 * simulator: the table benches parallelize across benchmarks, but a
 * single long run leaves the pool idle. The fix is the classic
 * checkpoint-and-replay split: a cheap functional pass (the emulator
 * alone runs ~10x faster than the emulator feeding the timing model)
 * captures full machine state every `interval` dynamic instructions,
 * and the expensive timing replay of the segments between
 * checkpoints then fans out across the thread pool (src/sim/shard).
 *
 * A checkpoint holds the register/cursor state plus the memory image
 * as page deltas against the executable's pristine initial image —
 * the benchmarks touch a small working set, so storing only dirty
 * pages keeps a whole run's checkpoint log in the tens-of-kilobytes
 * range instead of shards x megabytes. Each checkpoint also carries
 * the pcs of the last `warmup` retired instructions: the replay
 * issues them through the timing model first (uncounted) so the
 * pipeline's bounded history — unit ring, register read/write
 * cycles, fetch redirect state — matches the serial simulator's at
 * the cut, which is what makes the merged cycle totals exact (see
 * shard.hh for the bound).
 */

#ifndef EEL_SIM_CHECKPOINT_HH
#define EEL_SIM_CHECKPOINT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/emulator.hh"

namespace eel::sim {

/** Pages of a memory image that differ from a reference image. */
struct MemDelta
{
    static constexpr uint32_t pageBytes = 4096;

    struct Page
    {
        uint32_t offset;             ///< byte offset into the image
        std::vector<uint8_t> bytes;  ///< pageBytes (short at the end)
    };
    std::vector<Page> pages;

    /** Pages of `cur` that differ from `ref` (equal sizes). */
    static MemDelta diff(const std::vector<uint8_t> &ref,
                         const std::vector<uint8_t> &cur);

    /** Overwrite mem's recorded pages; mem must be ref-sized. */
    void apply(std::vector<uint8_t> &mem) const;

    /** Retained payload bytes. */
    uint64_t bytes() const;
};

/** Machine state at one cut, with memory stored as deltas. */
struct Checkpoint
{
    Emulator::State state;  ///< bare (memory images left empty)
    MemDelta dataDelta;     ///< vs the executable's initial data+bss
    MemDelta stackDelta;    ///< vs the zeroed initial stack
    /** Last `warmup` retired pcs before the cut, oldest first. */
    std::vector<uint32_t> warmupPcs;
};

struct CheckpointLog
{
    std::vector<Checkpoint> checkpoints;  ///< ascending state.retired
    RunResult functional;  ///< whole-run result of the capture pass
    uint64_t interval = 0;
    uint64_t bytes() const;  ///< approximate retained size
};

struct CheckpointOptions
{
    /** Dynamic instructions per shard (and between checkpoints). */
    uint64_t interval = 64 * 1024;
    /** Retired-pc history kept per checkpoint for timing warmup. */
    unsigned warmup = 1024;
    Emulator::Config emu{};
};

/**
 * Run the functional pass over x, capturing a checkpoint every
 * opts.interval retired instructions (none at 0 or at program
 * exit). Pass a shared pre-decoded text to skip re-decoding.
 */
CheckpointLog
captureCheckpoints(const exe::Executable &x,
                   const CheckpointOptions &opts = {},
                   std::shared_ptr<const Emulator::DecodedText> text =
                       nullptr);

/** x's pristine data+bss image, as the emulator constructs it —
 *  the reference image every MemDelta in a checkpoint (and in a
 *  cached result's final state) is diffed against. */
std::vector<uint8_t> initialDataImage(const exe::Executable &x);

/**
 * Expand cp back into a full emulator state for x (initial images
 * plus the recorded deltas); restoreState() of the result positions
 * a fresh emulator exactly at cp's cut.
 */
Emulator::State materializeState(const exe::Executable &x,
                                 const Emulator::Config &cfg,
                                 const Checkpoint &cp);

/**
 * Position emu exactly at cp's cut, in place: restore the bare
 * register/cursor state (which keeps emu's memory) and patch the
 * recorded page deltas straight into the live images. Equivalent to
 * restoreState(materializeState(...)) — which allocates and copies
 * two full memory images per call, the dominant per-shard setup cost
 * of the replay fan-out — but allocation-free.
 *
 * Precondition: emu's images hold the pristine initial contents the
 * deltas were diffed against, i.e. emu is freshly constructed for
 * the same executable and Config. (The shard replay constructs one
 * emulator per region, so this holds by construction there.)
 */
void restoreCheckpoint(Emulator &emu, const Checkpoint &cp);

} // namespace eel::sim

#endif // EEL_SIM_CHECKPOINT_HH
