/**
 * @file
 * Content-addressed cache of sharded timing-simulation results.
 *
 * The paper's methodology is "edit a binary, re-measure it": every
 * table is a sweep of rewritten variants of one program, and the
 * variants share ~95% of their text pages through exe::SectionStore.
 * Yet each variant pays a full timing run. This subsystem closes
 * that gap by memoizing per-shard timing results under keys built
 * from exactly what determines them:
 *
 *   shard key  = H(machine/config fingerprint,
 *                  pristine-data identity of the image,
 *                  the shard's entry machine state (its checkpoint:
 *                  registers, cursor, memory deltas, warmup pcs —
 *                  or, for a stitch resimulation, the predecessor's
 *                  normalized timing key via
 *                  TimingSim::appendNormalizedKey),
 *                  shard length, last-shard flag)
 *   + manifest = content hashes of the text pages the shard's replay
 *                actually executed (its page-touch bitmap)
 *
 * A candidate under the key is a hit only if every manifest page
 * hash matches the current image — so after a one-byte edit to a
 * hot page, exactly the shards that execute that page re-run
 * (counted as rescache.invalidations), and every other shard's
 * result is reused byte-for-byte. Register/memory entry state is in
 * the key because the retired pc stream is a function of it; text
 * content enters only through the manifest because an edit to a
 * never-executed page cannot change a replay (the emulator faults
 * loads outside data/stack, so text is only read at executed pcs).
 *
 * A second, run-level tier keys the fully merged run on the whole
 * image (every text+data page hash) plus the fingerprint, letting an
 * unchanged image skip even the functional capture pass. A third
 * tier does the same for whole serial timedRun() results, which is
 * what the service daemon consults across SIMULATE requests.
 *
 * Both tiers live in memory; with Config::dir set they write through
 * to a disk tier (one versioned, checksummed file per entry, loaded
 * on construction) so very long runs survive process restarts. Any
 * disk anomaly — short file, bad magic, wrong version, checksum
 * mismatch, truncated payload — rejects that file cleanly and the
 * lookup is treated as cold; a corrupt cache can cost time, never
 * correctness.
 *
 * The cache is only consulted for the perfect-icache configuration:
 * with Config::useICache the timing state is not self-contained
 * (cache contents are never snapshotted) and that config is
 * documented approximate anyway — the same gate the sharded
 * validation stitch uses.
 */

#ifndef EEL_SIM_RESULTCACHE_HH
#define EEL_SIM_RESULTCACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/checkpoint.hh"
#include "src/sim/timing.hh"

namespace eel::exe {
class SectionStore;
}

namespace eel::sim {

class ResultCache
{
  public:
    struct Config
    {
        /** Disk tier root ("" = in-memory only). Created on demand;
         *  entries already present are loaded at construction. */
        std::string dir;
        /** Optional store whose contentHash() memoizes page hashing
         *  (gc-safe: the store re-hashes recycled chunk addresses
         *  instead of pinning pages). Null = hash pages directly. */
        exe::SectionStore *store = nullptr;
    };

    struct Stats
    {
        uint64_t lookups = 0;        ///< shard+run+timed lookups
        uint64_t hits = 0;           ///< all tiers
        uint64_t runHits = 0;        ///< whole-run tier hits
        uint64_t shardHits = 0;      ///< shard tier hits
        uint64_t timedHits = 0;      ///< serial timed-run tier hits
        uint64_t diskHits = 0;       ///< hits on disk-loaded entries
        uint64_t misses = 0;
        /** Lookups that found candidates under the key but every
         *  candidate's page manifest mismatched the current image —
         *  i.e. a shard re-run forced by an edited executed page. */
        uint64_t invalidations = 0;
        uint64_t stores = 0;
        uint64_t diskEntriesLoaded = 0;
        uint64_t diskRejects = 0;    ///< corrupt/alien files skipped
    };

    /** 128-bit content key (two independent FNV-1a streams); low
     *  collision odds are backed by runSharded's merged-output
     *  fatals, which would trip on any mismatched payload. */
    struct Key
    {
        uint64_t a = 0, b = 0;
        bool operator==(const Key &) const = default;
    };

    /**
     * Per-invocation key context for one (executable, model, config)
     * triple: the whole-image run key, the text-free base the shard
     * keys mix from, and the per-page content hashes the manifests
     * verify against.
     */
    struct ImageKey
    {
        Key run;   ///< fingerprint + every text and data page
        Key base;  ///< fingerprint + pristine-data identity only
        std::vector<uint64_t> textPageHash;  ///< per 1 KiB text page
        bool leader = false;  ///< a block-leader bitmap was keyed in
    };

    /** One shard's cached timing deltas — exactly the per-shard
     *  record runSharded merges, including the stitch-validation
     *  keys and handoff state. */
    struct ShardValue
    {
        uint64_t cycles = 0;
        uint64_t insts = 0;
        std::vector<uint64_t> hist;
        obs::StallBreakdown breakdown;
        uint64_t stallCycles = 0;
        uint64_t blocks = 0;
        std::vector<uint64_t> perWord;  ///< sized iff leader bitmap
        std::string output;
        Emulator::ArchSnapshot endState;  ///< last shard only
        std::vector<uint64_t> startKey, endKey;
        TimingSim::State endTiming;
    };

    /** A fully merged sharded run (the fields a warm re-run must
     *  reproduce byte-for-byte; wall-clock stats excluded). */
    struct RunValue
    {
        RunResult result;
        uint64_t cycles = 0;
        std::vector<uint64_t> issueHistogram;
        obs::StallBreakdown stallBreakdown;
        uint64_t stallCycles = 0;
        std::vector<uint64_t> leaderRetires;
        uint64_t blocksRetired = 0;
        Emulator::ArchSnapshot finalState;
        uint64_t shards = 0;
        uint64_t resims = 0;
    };

    /** A completed serial timedRun() (the service's SIMULATE tier). */
    struct TimedValue
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
        int exitCode = -1;
        bool exited = false;
        std::string output;
    };

    ResultCache() : ResultCache(Config{}) {}
    explicit ResultCache(Config cfg);

    /**
     * Build the key context for one runSharded invocation. Hashes
     * the machine model, the output-affecting timing/emulator/shard
     * configuration (engine-selection knobs that are proven
     * output-invariant — dispatch, simdHold, traceMemo — are
     * deliberately excluded), the pristine data identity, every
     * text page, and the block-leader bitmap if any.
     */
    ImageKey imageKey(const exe::Executable &x,
                      const machine::MachineModel &model,
                      const TimingSim::Config &tcfg,
                      const Emulator::Config &ecfg,
                      uint64_t interval, unsigned warmup,
                      const std::vector<uint8_t> *blockLeader);

    /** Key for a shard replayed from its checkpoint with recorded
     *  warmup pcs (cp null for shard 0, which starts from reset). */
    Key shardKeyWarm(const ImageKey &k, const Checkpoint *cp,
                     uint64_t len, bool isLast) const;
    /** Key for a stitch resimulation continued from the
     *  predecessor's exact end state, identified by its normalized
     *  timing key (equal keys time any future stream identically). */
    Key shardKeyHandoff(const ImageKey &k, const Checkpoint *cp,
                        const std::vector<uint64_t> &entryKey,
                        uint64_t len, bool isLast) const;

    /**
     * Shard tier: a candidate under sk hits iff every touched page
     * in its manifest still hashes the same in k. On a hit, out is
     * the exact prior replay (endState rebuilt from deltas against
     * x's pristine images sized by ecfg).
     */
    bool lookupShard(const ImageKey &k, const Key &sk,
                     const exe::Executable &x,
                     const Emulator::Config &ecfg, ShardValue &out);
    void storeShard(const ImageKey &k, const Key &sk,
                    const std::vector<uint32_t> &touchedPages,
                    const ShardValue &v, const exe::Executable &x);

    /** Run tier: keyed on the whole image, no manifest needed. */
    bool lookupRun(const ImageKey &k, const exe::Executable &x,
                   const Emulator::Config &ecfg, RunValue &out);
    void storeRun(const ImageKey &k, const exe::Executable &x,
                  const RunValue &v);

    /** Timed-run tier (serial timedRun; the service's SIMULATE). */
    Key timedKey(const exe::Executable &x,
                 const machine::MachineModel &model,
                 const TimingSim::Config &tcfg,
                 const Emulator::Config &ecfg);
    bool lookupTimed(const Key &k, TimedValue &out);
    void storeTimed(const Key &k, const TimedValue &v);

    Stats stats() const;

    /** Disk format version; bump on any layout change. */
    static constexpr uint32_t diskVersion = 1;

    /** endState/finalState as deltas vs the pristine images (a full
     *  ArchSnapshot carries the whole 1 MiB stack). Public only so
     *  the serializers in resultcache.cc can name it. */
    struct ArchDelta
    {
        bool present = false;
        uint32_t intRegs[32] = {};
        uint32_t fpRegs[32] = {};
        unsigned icc = 0, fcc = 0;
        uint32_t y = 0;
        MemDelta dataDelta;   ///< vs initialDataImage(x)
        MemDelta stackDelta;  ///< vs zeros
    };

  private:
    struct KeyHash
    {
        size_t operator()(const Key &k) const { return size_t(k.a); }
    };

    struct StoredShard
    {
        uint64_t cycles = 0, insts = 0;
        std::vector<uint64_t> hist;
        obs::StallBreakdown breakdown;
        uint64_t stallCycles = 0;
        uint64_t blocks = 0;
        /** Sparse perWord: (word index, count), plus original size. */
        std::vector<std::pair<uint32_t, uint64_t>> perWordNz;
        uint64_t perWordSize = 0;
        std::string output;
        ArchDelta endState;
        std::vector<uint64_t> startKey, endKey;
        TimingSim::State endTiming;
    };

    struct ShardEntry
    {
        std::vector<std::pair<uint32_t, uint64_t>> manifest;
        StoredShard value;
        bool fromDisk = false;
    };

    struct StoredRun
    {
        RunResult result;
        uint64_t cycles = 0;
        std::vector<uint64_t> issueHistogram;
        obs::StallBreakdown stallBreakdown;
        uint64_t stallCycles = 0;
        std::vector<std::pair<uint32_t, uint64_t>> leaderNz;
        uint64_t leaderSize = 0;
        uint64_t blocksRetired = 0;
        ArchDelta finalState;
        uint64_t shards = 0;
        uint64_t resims = 0;
    };

    struct RunEntry
    {
        StoredRun value;
        bool fromDisk = false;
    };

    struct TimedEntry
    {
        TimedValue value;
        bool fromDisk = false;
    };

    static ArchDelta deltaArch(const Emulator::ArchSnapshot &s,
                               const exe::Executable &x);
    static Emulator::ArchSnapshot rebuildArch(
        const ArchDelta &d, const exe::Executable &x,
        const Emulator::Config &ecfg);

    uint64_t pageHash(const exe::ChunkPtr &c) const;
    void loadDiskTier();
    void writeEntry(uint8_t kind, const std::string &name,
                    const std::string &payload);
    bool adoptPayload(uint8_t kind, const std::string &payload);
    void noteHit(bool fromDisk, uint64_t Stats::*tier);

    Config cfg;
    mutable std::mutex mu;
    std::unordered_map<Key, std::vector<ShardEntry>, KeyHash> shardTier;
    std::unordered_map<Key, RunEntry, KeyHash> runTier;
    std::unordered_map<Key, TimedEntry, KeyHash> timedTier;
    Stats st;
    uint64_t tempSeq = 0;
};

} // namespace eel::sim

#endif // EEL_SIM_RESULTCACHE_HH
