/**
 * @file
 * Functional emulator for XEF executables: SPARC V8 subset with
 * register windows, delayed control transfer (including the annul
 * bit), and the software-trap convention of isa::trap. It stands in
 * for the real SPARC hardware the paper ran on: it validates that
 * edited executables still compute the same results, and feeds the
 * retired instruction stream to the timing simulator.
 */

#ifndef EEL_SIM_EMULATOR_HH
#define EEL_SIM_EMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/exe/executable.hh"
#include "src/isa/instruction.hh"

namespace eel::sim {

/** Receives every retired (non-annulled) instruction in order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void retire(uint32_t pc, const isa::Instruction &inst) = 0;
};

struct RunResult
{
    uint64_t instructions = 0;  ///< retired count
    int exitCode = -1;          ///< %o0 at the exit trap
    bool exited = false;        ///< false if the limit was hit
    std::string output;         ///< put_int / put_char trap output
};

class Emulator
{
  public:
    struct Config
    {
        unsigned windows = 128;       ///< register window depth
        uint32_t stackBytes = 1 << 20;
        uint64_t maxInstructions = 1ull << 32;
    };

    explicit Emulator(const exe::Executable &x);
    Emulator(const exe::Executable &x, Config cfg);

    /**
     * Run from the entry point until the exit trap or the limit.
     * Architectural and memory state persist afterwards (so counters
     * can be read out); construct a fresh Emulator for a fresh run.
     */
    RunResult run(TraceSink *sink = nullptr);

    /** Memory access after (or before) a run, e.g. counter readout. */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

    /** Architectural register access (current window). */
    uint32_t reg(unsigned r) const;
    void setReg(unsigned r, uint32_t v);
    uint32_t fpreg(unsigned r) const { return fregs[r]; }

  private:
    uint32_t load(uint32_t addr, unsigned bytes, bool sign_extend);
    void store(uint32_t addr, unsigned bytes, uint32_t value);
    uint8_t *memPtr(uint32_t addr, unsigned bytes);
    void setIccLogic(uint32_t result);
    void setIccAdd(uint32_t a, uint32_t b, uint32_t r);
    void setIccSub(uint32_t a, uint32_t b, uint32_t r);
    bool iccCond(unsigned c) const;
    bool fccCond(unsigned c) const;
    uint64_t fpairGet(unsigned r) const;
    void fpairSet(unsigned r, uint64_t v);

    const exe::Executable &x;
    Config cfg;

    std::vector<isa::Instruction> decoded;  ///< pre-decoded text

    // Register windows: window w's 16 slots hold outs (0-7) and
    // locals (8-15); the ins of window w are the outs of window w+1.
    std::vector<uint32_t> wins;
    uint32_t globals[8] = {};
    uint32_t fregs[32] = {};
    unsigned cwp = 0;
    int winDepth = 0;

    // Condition codes: icc as NZVC bits 3..0; fcc as 0=E,1=L,2=G,3=U.
    unsigned icc = 0;
    unsigned fcc = 0;
    uint32_t yreg = 0;

    std::vector<uint8_t> dataMem;   ///< [dataBase, bssEnd)
    std::vector<uint8_t> stackMem;  ///< [stackBase, stackTop)
    uint32_t dataLo, dataHi, stackLo, stackHi;
};

} // namespace eel::sim

#endif // EEL_SIM_EMULATOR_HH
