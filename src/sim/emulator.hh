/**
 * @file
 * Functional emulator for XEF executables: SPARC V8 subset with
 * register windows, delayed control transfer (including the annul
 * bit), and the software-trap convention of isa::trap. It stands in
 * for the real SPARC hardware the paper ran on: it validates that
 * edited executables still compute the same results, and feeds the
 * retired instruction stream to the timing simulator.
 *
 * The interpreter loop is a template over the sink type: callers
 * that pass a concrete (ideally `final`) sink get a monomorphic loop
 * with the retire callback inlined — no virtual dispatch per retired
 * instruction. The classic TraceSink* entry point remains for
 * polymorphic callers and forwards into the same loop.
 */

#ifndef EEL_SIM_EMULATOR_HH
#define EEL_SIM_EMULATOR_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/exe/executable.hh"
#include "src/isa/instruction.hh"
#include "src/isa/opcodes.hh"
#include "src/isa/registers.hh"
#include "src/support/logging.hh"

namespace eel::sim {

/** Receives every retired (non-annulled) instruction in order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void retire(uint32_t pc, const isa::Instruction &inst) = 0;
};

/** Sink that ignores the trace (the fastest run() instantiation). */
struct NullSink
{
    void retire(uint32_t, const isa::Instruction &) {}
};

struct RunResult
{
    uint64_t instructions = 0;  ///< retired count
    int exitCode = -1;          ///< %o0 at the exit trap
    bool exited = false;        ///< false if the limit was hit
    std::string output;         ///< put_int / put_char trap output
};

// X-macro op lists for the interpreter engines. Every opcode whose
// handler reads the src2 operand (rs2 or simm13) is split into two
// dispatch tokens — one per addressing form — so the operand fetch is
// resolved at decode time instead of per retire. The remaining ops
// get one token each. interp_loop.inc expands these lists twice: once
// into a token switch (portable) and once into computed-goto handler
// labels (direct-threaded).
#define EEL_EMU_SRC2_OPS(X)                                           \
    X(Add) X(Addcc) X(Sub) X(Subcc) X(And) X(Andcc) X(Or) X(Orcc)     \
    X(Xor) X(Xorcc) X(Sll) X(Srl) X(Sra) X(Umul) X(Smul) X(Udiv)      \
    X(Sdiv) X(Wry) X(Save) X(Restore) X(Jmpl) X(Ld) X(Ldub) X(Ldsb)   \
    X(Lduh) X(Ldsh) X(Ldd) X(St) X(Stb) X(Sth) X(Std) X(Ldf)          \
    X(Lddf) X(Stf) X(Stdf)
#define EEL_EMU_PLAIN_OPS(X)                                          \
    X(Rdy) X(Sethi) X(Nop) X(Bicc) X(Fbfcc) X(Call) X(Ticc)           \
    X(Fadds) X(Fsubs) X(Fmuls) X(Fdivs) X(Faddd) X(Fsubd) X(Fmuld)    \
    X(Fdivd) X(Fsqrts) X(Fsqrtd) X(Fmovs) X(Fnegs) X(Fabss)           \
    X(Fitos) X(Fitod) X(Fstoi) X(Fdtoi) X(Fstod) X(Fdtos) X(Fcmps)    \
    X(Fcmpd)

/**
 * Dispatch token: the pre-resolved handler index for one decoded
 * instruction. Tokens (not label addresses) are what the decode memo
 * persists, so one DecodedText serves every engine and every run()
 * instantiation — label addresses are private to each instantiated
 * interpreter body.
 */
enum EmulatorToken : uint8_t {
#define EEL_EMU_T(op) Tok_##op##_i, Tok_##op##_r,
    EEL_EMU_SRC2_OPS(EEL_EMU_T)
#undef EEL_EMU_T
#define EEL_EMU_T(op) Tok_##op,
    EEL_EMU_PLAIN_OPS(EEL_EMU_T)
#undef EEL_EMU_T
    Tok_Invalid,
    NumEmulatorTokens
};

/** The dispatch token for one decoded instruction. */
uint8_t emulatorToken(const isa::Instruction &in);

namespace detail {
/** Folds a run's retires into the "dispatch.threaded_hits" counter. */
void noteThreadedRetires(uint64_t n);
} // namespace detail

class Emulator
{
  public:
    struct Config
    {
        unsigned windows = 128;       ///< register window depth
        uint32_t stackBytes = 1 << 20;
        uint64_t maxInstructions = 1ull << 32;

        /**
         * Interpreter engine. Auto picks direct-threaded dispatch
         * when the build supports it (EEL_THREADED_DISPATCH on a
         * computed-goto compiler) and the token switch otherwise;
         * Switch pins the portable engine. Both engines retire the
         * identical instruction stream — the differential fuzz
         * oracle holds them bit-equal — so this only selects speed.
         */
        enum class Dispatch : uint8_t { Auto, Threaded, Switch };
        Dispatch dispatch = Dispatch::Auto;
    };

    /**
     * The pre-decoded text image. Decoding is pure per-word work, so
     * one DecodedText may be shared by any number of emulators of the
     * same executable — the sharded replayer constructs one emulator
     * per shard and would otherwise re-decode the whole text each
     * time. Alongside the decoded fields it carries the resolved
     * dispatch token per word, so the engines never re-derive the
     * handler from (op, iflag) at retire time; via the memoized
     * overload below, the token table persists across runs and
     * shards in the section store.
     */
    struct DecodedText
    {
        std::vector<isa::Instruction> insts;
        std::vector<uint8_t> tokens;  ///< EmulatorToken per word

        size_t size() const { return insts.size(); }
        const isa::Instruction *data() const { return insts.data(); }
        const isa::Instruction &
        operator[](size_t i) const
        {
            return insts[i];
        }
    };
    static std::shared_ptr<const DecodedText>
    decodeText(const exe::Executable &x);

    /**
     * As above, but memoized in a section store: the decode is keyed
     * by x's exact text pages, so any executable whose text resolves
     * to the same interned chunks — the original and an identical
     * rewrite, or repeated requests for one image — reuses one
     * DecodedText instead of decoding (and holding) its own.
     */
    static std::shared_ptr<const DecodedText>
    decodeText(const exe::Executable &x, exe::SectionStore &store);

    explicit Emulator(const exe::Executable &x);
    Emulator(const exe::Executable &x, Config cfg);
    Emulator(const exe::Executable &x, Config cfg,
             std::shared_ptr<const DecodedText> text);

    /**
     * Run from the current cursor until the exit trap or the limit.
     * A freshly constructed emulator is positioned at the entry
     * point; the cursor (pc/npc and the pending-annul flag) persists
     * across calls, so run(sink, n) executes the next n instructions
     * and a later call resumes exactly where it stopped.
     * Architectural and memory state persist too (so counters can be
     * read out). Once the exit trap retires, further calls return
     * immediately with the saved exit code.
     *
     * The templated form statically binds sink.retire; pass a
     * `final` sink class to guarantee direct dispatch.
     */
    template <class Sink> RunResult run(Sink &sink, uint64_t limit);

    /** Run until exit or the configured instruction cap. */
    template <class Sink>
    RunResult
    run(Sink &sink)
    {
        return run(sink, cfg.maxInstructions);
    }

    /** Polymorphic entry point (nullptr = no trace). */
    RunResult run(TraceSink *sink = nullptr);

    /** Total instructions retired since construction/restore. */
    uint64_t retired() const { return totalRetired; }
    /** True once the exit trap has retired. */
    bool finished() const { return hasExited; }

    /** Memory access after (or before) a run, e.g. counter readout. */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

    /** The live memory images (for diffing against a reference). */
    const std::vector<uint8_t> &dataImage() const { return dataMem; }
    const std::vector<uint8_t> &stackImage() const { return stackMem; }
    /** Mutable image access for in-place checkpoint restore
     *  (restoreCheckpoint in src/sim/checkpoint.hh patches page
     *  deltas straight into the live images instead of materializing
     *  and copying whole replacements). */
    std::vector<uint8_t> &dataImageMut() { return dataMem; }
    std::vector<uint8_t> &stackImageMut() { return stackMem; }

    /**
     * Complete machine state — every register window, condition
     * codes, memory, the run cursor, and the retirement count — as
     * opposed to ArchSnapshot, which is the *comparison* view of the
     * current window. restoreState() on a fresh emulator of the same
     * executable and Config reproduces the source emulator exactly,
     * which is what the checkpoint-and-replay sharding is built on.
     */
    struct State
    {
        std::vector<uint32_t> wins;
        std::array<uint32_t, 8> globals = {};
        std::array<uint32_t, 32> fpRegs = {};
        unsigned cwp = 0;
        int winDepth = 0;
        unsigned icc = 0;
        unsigned fcc = 0;
        uint32_t y = 0;
        std::vector<uint8_t> dataMem;   ///< empty if saved bare
        std::vector<uint8_t> stackMem;  ///< empty if saved bare
        uint32_t pc = 0;
        uint32_t npc = 0;
        bool annul = false;
        bool exited = false;
        int exitCode = -1;
        uint64_t retired = 0;
    };

    /**
     * Capture the full state; withMemory=false leaves the memory
     * images empty for callers that store them separately (e.g. as
     * page deltas against the initial image).
     */
    State saveState(bool withMemory = true) const;

    /**
     * Adopt a previously saved state. The state's window depth and
     * memory image sizes must match this emulator's Config; a bare
     * state (empty memory images) keeps the current memory.
     */
    void restoreState(const State &s);

    /**
     * Architectural register access (current window). Inline and
     * branch-light: outs and locals are contiguous in a window's 16
     * slots, so r in [8,24) is one indexed load off the cached
     * window base; ins resolve through the cached caller-window
     * base. The bases are maintained by setWindow() so the modulo
     * window arithmetic happens per save/restore, not per access.
     */
    uint32_t
    reg(unsigned r) const
    {
        if (r < 8)
            return globals[r];
        if (r < 24)
            return wins[winBase + (r - 8)];   // outs + locals
        return wins[upBase + (r - 24)];       // ins = caller outs
    }
    void
    setReg(unsigned r, uint32_t v)
    {
        if (r == 0)
            return;
        if (r < 8)
            globals[r] = v;
        else if (r < 24)
            wins[winBase + (r - 8)] = v;
        else
            wins[upBase + (r - 24)] = v;
    }
    uint32_t fpreg(unsigned r) const { return fregs[r]; }

    /**
     * Full architectural state after (or before) a run, for oracle
     * comparisons between differently edited builds of one program:
     * the current window's 32 integer registers, the fp registers,
     * condition codes, Y, and both memory images. equalTo() by
     * default ignores registers whose values are layout-dependent
     * or editor-reserved rather than computational: %g6/%g7 (the
     * editor's scratch — a speculated instrumentation load may
     * leave different junk there after a side exit) and %o7/%i7
     * (return addresses, i.e. code addresses, which legitimately
     * differ between two layouts of the same program).
     */
    struct ArchSnapshot
    {
        uint32_t intRegs[32] = {};
        uint32_t fpRegs[32] = {};
        unsigned icc = 0;
        unsigned fcc = 0;
        uint32_t y = 0;
        std::vector<uint8_t> dataMem;
        std::vector<uint8_t> stackMem;

        bool equalTo(const ArchSnapshot &o,
                     bool ignoreScratch = true) const;
    };
    ArchSnapshot snapshot() const;

  private:
    // The interpreter engines (defined via interp_loop.inc). Both
    // retire the identical stream; run() selects per Config.
    template <class Sink>
    RunResult runSwitch(Sink &sink, uint64_t limit);
    template <class Sink>
    RunResult runThreaded(Sink &sink, uint64_t limit);

    /** Set cwp and the cached window bases reg()/setReg() read. */
    void
    setWindow(unsigned w)
    {
        cwp = w;
        winBase = 16 * w;
        upBase = 16 * ((w + 1) % cfg.windows);
    }

    uint32_t load(uint32_t addr, unsigned bytes,
                  bool sign_extend) const;
    void store(uint32_t addr, unsigned bytes, uint32_t value);
    const uint8_t *memPtr(uint32_t addr, unsigned bytes) const;
    uint8_t *memPtr(uint32_t addr, unsigned bytes);
    void setIccLogic(uint32_t result);
    void setIccAdd(uint32_t a, uint32_t b, uint32_t r);
    void setIccSub(uint32_t a, uint32_t b, uint32_t r);
    bool iccCond(unsigned c) const;
    bool fccCond(unsigned c) const;
    uint64_t fpairGet(unsigned r) const;
    void fpairSet(unsigned r, uint64_t v);

    const exe::Executable &x;
    Config cfg;

    std::shared_ptr<const DecodedText> decoded;  ///< pre-decoded text

    // Register windows: window w's 16 slots hold outs (0-7) and
    // locals (8-15); the ins of window w are the outs of window w+1.
    std::vector<uint32_t> wins;
    uint32_t globals[8] = {};
    uint32_t fregs[32] = {};
    unsigned cwp = 0;
    unsigned winBase = 0;  ///< wins[] index of window cwp (16 * cwp)
    unsigned upBase = 0;   ///< wins[] index of the caller's window
    int winDepth = 0;

    // Condition codes: icc as NZVC bits 3..0; fcc as 0=E,1=L,2=G,3=U.
    unsigned icc = 0;
    unsigned fcc = 0;
    uint32_t yreg = 0;

    std::vector<uint8_t> dataMem;   ///< [dataBase, bssEnd)
    std::vector<uint8_t> stackMem;  ///< [stackBase, stackTop)
    uint32_t dataLo, dataHi, stackLo, stackHi;

    // Run cursor: where the next run() call resumes.
    uint32_t curPc = 0;
    uint32_t curNpc = 0;
    bool curAnnul = false;
    bool hasExited = false;
    int savedExitCode = -1;
    uint64_t totalRetired = 0;
};

// Computed goto ("labels as values") is a GNU extension; the
// direct-threaded engine exists only where it does.
#if defined(EEL_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define EEL_HAVE_THREADED_DISPATCH 1
#else
#define EEL_HAVE_THREADED_DISPATCH 0
#endif

// Instantiate the two interpreter engines from the shared body.
#define EEL_INTERP_NAME runSwitch
#define EEL_INTERP_THREADED 0
#include "src/sim/interp_loop.inc"

#if EEL_HAVE_THREADED_DISPATCH
#define EEL_INTERP_NAME runThreaded
#define EEL_INTERP_THREADED 1
#include "src/sim/interp_loop.inc"
#endif

template <class Sink>
RunResult
Emulator::run(Sink &sink, uint64_t limit)
{
#if EEL_HAVE_THREADED_DISPATCH
    if (cfg.dispatch != Config::Dispatch::Switch) {
        RunResult res = runThreaded(sink, limit);
        detail::noteThreadedRetires(res.instructions);
        return res;
    }
#endif
    // Dispatch::Threaded degrades to the token switch when the build
    // has no computed goto; the engines are output-identical.
    return runSwitch(sink, limit);
}

} // namespace eel::sim

#endif // EEL_SIM_EMULATOR_HH
