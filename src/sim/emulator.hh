/**
 * @file
 * Functional emulator for XEF executables: SPARC V8 subset with
 * register windows, delayed control transfer (including the annul
 * bit), and the software-trap convention of isa::trap. It stands in
 * for the real SPARC hardware the paper ran on: it validates that
 * edited executables still compute the same results, and feeds the
 * retired instruction stream to the timing simulator.
 *
 * The interpreter loop is a template over the sink type: callers
 * that pass a concrete (ideally `final`) sink get a monomorphic loop
 * with the retire callback inlined — no virtual dispatch per retired
 * instruction. The classic TraceSink* entry point remains for
 * polymorphic callers and forwards into the same loop.
 */

#ifndef EEL_SIM_EMULATOR_HH
#define EEL_SIM_EMULATOR_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/exe/executable.hh"
#include "src/isa/instruction.hh"
#include "src/isa/opcodes.hh"
#include "src/isa/registers.hh"
#include "src/support/logging.hh"

namespace eel::sim {

/** Receives every retired (non-annulled) instruction in order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void retire(uint32_t pc, const isa::Instruction &inst) = 0;
};

/** Sink that ignores the trace (the fastest run() instantiation). */
struct NullSink
{
    void retire(uint32_t, const isa::Instruction &) {}
};

struct RunResult
{
    uint64_t instructions = 0;  ///< retired count
    int exitCode = -1;          ///< %o0 at the exit trap
    bool exited = false;        ///< false if the limit was hit
    std::string output;         ///< put_int / put_char trap output
};

class Emulator
{
  public:
    struct Config
    {
        unsigned windows = 128;       ///< register window depth
        uint32_t stackBytes = 1 << 20;
        uint64_t maxInstructions = 1ull << 32;
    };

    /**
     * The pre-decoded text image. Decoding is pure per-word work, so
     * one DecodedText may be shared by any number of emulators of the
     * same executable — the sharded replayer constructs one emulator
     * per shard and would otherwise re-decode the whole text each
     * time.
     */
    using DecodedText = std::vector<isa::Instruction>;
    static std::shared_ptr<const DecodedText>
    decodeText(const exe::Executable &x);

    /**
     * As above, but memoized in a section store: the decode is keyed
     * by x's exact text pages, so any executable whose text resolves
     * to the same interned chunks — the original and an identical
     * rewrite, or repeated requests for one image — reuses one
     * DecodedText instead of decoding (and holding) its own.
     */
    static std::shared_ptr<const DecodedText>
    decodeText(const exe::Executable &x, exe::SectionStore &store);

    explicit Emulator(const exe::Executable &x);
    Emulator(const exe::Executable &x, Config cfg);
    Emulator(const exe::Executable &x, Config cfg,
             std::shared_ptr<const DecodedText> text);

    /**
     * Run from the current cursor until the exit trap or the limit.
     * A freshly constructed emulator is positioned at the entry
     * point; the cursor (pc/npc and the pending-annul flag) persists
     * across calls, so run(sink, n) executes the next n instructions
     * and a later call resumes exactly where it stopped.
     * Architectural and memory state persist too (so counters can be
     * read out). Once the exit trap retires, further calls return
     * immediately with the saved exit code.
     *
     * The templated form statically binds sink.retire; pass a
     * `final` sink class to guarantee direct dispatch.
     */
    template <class Sink> RunResult run(Sink &sink, uint64_t limit);

    /** Run until exit or the configured instruction cap. */
    template <class Sink>
    RunResult
    run(Sink &sink)
    {
        return run(sink, cfg.maxInstructions);
    }

    /** Polymorphic entry point (nullptr = no trace). */
    RunResult run(TraceSink *sink = nullptr);

    /** Total instructions retired since construction/restore. */
    uint64_t retired() const { return totalRetired; }
    /** True once the exit trap has retired. */
    bool finished() const { return hasExited; }

    /** Memory access after (or before) a run, e.g. counter readout. */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

    /** The live memory images (for diffing against a reference). */
    const std::vector<uint8_t> &dataImage() const { return dataMem; }
    const std::vector<uint8_t> &stackImage() const { return stackMem; }

    /**
     * Complete machine state — every register window, condition
     * codes, memory, the run cursor, and the retirement count — as
     * opposed to ArchSnapshot, which is the *comparison* view of the
     * current window. restoreState() on a fresh emulator of the same
     * executable and Config reproduces the source emulator exactly,
     * which is what the checkpoint-and-replay sharding is built on.
     */
    struct State
    {
        std::vector<uint32_t> wins;
        std::array<uint32_t, 8> globals = {};
        std::array<uint32_t, 32> fpRegs = {};
        unsigned cwp = 0;
        int winDepth = 0;
        unsigned icc = 0;
        unsigned fcc = 0;
        uint32_t y = 0;
        std::vector<uint8_t> dataMem;   ///< empty if saved bare
        std::vector<uint8_t> stackMem;  ///< empty if saved bare
        uint32_t pc = 0;
        uint32_t npc = 0;
        bool annul = false;
        bool exited = false;
        int exitCode = -1;
        uint64_t retired = 0;
    };

    /**
     * Capture the full state; withMemory=false leaves the memory
     * images empty for callers that store them separately (e.g. as
     * page deltas against the initial image).
     */
    State saveState(bool withMemory = true) const;

    /**
     * Adopt a previously saved state. The state's window depth and
     * memory image sizes must match this emulator's Config; a bare
     * state (empty memory images) keeps the current memory.
     */
    void restoreState(const State &s);

    /** Architectural register access (current window). */
    uint32_t reg(unsigned r) const;
    void setReg(unsigned r, uint32_t v);
    uint32_t fpreg(unsigned r) const { return fregs[r]; }

    /**
     * Full architectural state after (or before) a run, for oracle
     * comparisons between differently edited builds of one program:
     * the current window's 32 integer registers, the fp registers,
     * condition codes, Y, and both memory images. equalTo() by
     * default ignores registers whose values are layout-dependent
     * or editor-reserved rather than computational: %g6/%g7 (the
     * editor's scratch — a speculated instrumentation load may
     * leave different junk there after a side exit) and %o7/%i7
     * (return addresses, i.e. code addresses, which legitimately
     * differ between two layouts of the same program).
     */
    struct ArchSnapshot
    {
        uint32_t intRegs[32] = {};
        uint32_t fpRegs[32] = {};
        unsigned icc = 0;
        unsigned fcc = 0;
        uint32_t y = 0;
        std::vector<uint8_t> dataMem;
        std::vector<uint8_t> stackMem;

        bool equalTo(const ArchSnapshot &o,
                     bool ignoreScratch = true) const;
    };
    ArchSnapshot snapshot() const;

  private:
    uint32_t load(uint32_t addr, unsigned bytes,
                  bool sign_extend) const;
    void store(uint32_t addr, unsigned bytes, uint32_t value);
    const uint8_t *memPtr(uint32_t addr, unsigned bytes) const;
    uint8_t *memPtr(uint32_t addr, unsigned bytes);
    void setIccLogic(uint32_t result);
    void setIccAdd(uint32_t a, uint32_t b, uint32_t r);
    void setIccSub(uint32_t a, uint32_t b, uint32_t r);
    bool iccCond(unsigned c) const;
    bool fccCond(unsigned c) const;
    uint64_t fpairGet(unsigned r) const;
    void fpairSet(unsigned r, uint64_t v);

    const exe::Executable &x;
    Config cfg;

    std::shared_ptr<const DecodedText> decoded;  ///< pre-decoded text

    // Register windows: window w's 16 slots hold outs (0-7) and
    // locals (8-15); the ins of window w are the outs of window w+1.
    std::vector<uint32_t> wins;
    uint32_t globals[8] = {};
    uint32_t fregs[32] = {};
    unsigned cwp = 0;
    int winDepth = 0;

    // Condition codes: icc as NZVC bits 3..0; fcc as 0=E,1=L,2=G,3=U.
    unsigned icc = 0;
    unsigned fcc = 0;
    uint32_t yreg = 0;

    std::vector<uint8_t> dataMem;   ///< [dataBase, bssEnd)
    std::vector<uint8_t> stackMem;  ///< [stackBase, stackTop)
    uint32_t dataLo, dataHi, stackLo, stackHi;

    // Run cursor: where the next run() call resumes.
    uint32_t curPc = 0;
    uint32_t curNpc = 0;
    bool curAnnul = false;
    bool hasExited = false;
    int savedExitCode = -1;
    uint64_t totalRetired = 0;
};

template <class Sink>
RunResult
Emulator::run(Sink &sink, uint64_t limit)
{
    using isa::Instruction;
    using isa::Op;

    RunResult res;
    res.exited = hasExited;
    res.exitCode = savedExitCode;
    if (hasExited || limit == 0)
        return res;

    uint32_t pc = curPc;
    uint32_t npc = curNpc;
    bool annul_next = curAnnul;

    // Hot-loop invariants: the decoded text as a raw array, so the
    // per-retire pc -> instruction step is one subtract, one shift,
    // and one bounds check.
    const Instruction *const text = decoded->data();
    const uint32_t textWords = static_cast<uint32_t>(decoded->size());

    auto src2 = [&](const Instruction &in) -> uint32_t {
        return in.iflag ? static_cast<uint32_t>(in.simm13)
                        : reg(in.rs2);
    };
    auto f32 = [](uint32_t bits) { return std::bit_cast<float>(bits); };
    auto b32 = [](float f) { return std::bit_cast<uint32_t>(f); };
    auto f64 = [](uint64_t bits) {
        return std::bit_cast<double>(bits);
    };
    auto b64 = [](double d) { return std::bit_cast<uint64_t>(d); };

    while (res.instructions < limit) {
        uint32_t off = pc - exe::textBase;
        uint32_t idx = off >> 2;
        if ((off & 3) || idx >= textWords)
            fatal("emulator: pc 0x%x outside text", pc);
        uint32_t cur_pc = pc;

        if (annul_next) {
            annul_next = false;
            pc = npc;
            npc += 4;
            continue;
        }

        const Instruction &in = text[idx];
        if (in.op == Op::Invalid)
            fatal("emulator: invalid instruction at 0x%x", cur_pc);

        ++res.instructions;
        sink.retire(cur_pc, in);

        uint32_t next_pc = npc;
        uint32_t next_npc = npc + 4;

        switch (in.op) {
          case Op::Add:
            setReg(in.rd, reg(in.rs1) + src2(in));
            break;
          case Op::Addcc: {
            uint32_t a = reg(in.rs1), b = src2(in), r = a + b;
            setReg(in.rd, r);
            setIccAdd(a, b, r);
            break;
          }
          case Op::Sub:
            setReg(in.rd, reg(in.rs1) - src2(in));
            break;
          case Op::Subcc: {
            uint32_t a = reg(in.rs1), b = src2(in), r = a - b;
            setReg(in.rd, r);
            setIccSub(a, b, r);
            break;
          }
          case Op::And:
            setReg(in.rd, reg(in.rs1) & src2(in));
            break;
          case Op::Andcc: {
            uint32_t r = reg(in.rs1) & src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Or:
            setReg(in.rd, reg(in.rs1) | src2(in));
            break;
          case Op::Orcc: {
            uint32_t r = reg(in.rs1) | src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Xor:
            setReg(in.rd, reg(in.rs1) ^ src2(in));
            break;
          case Op::Xorcc: {
            uint32_t r = reg(in.rs1) ^ src2(in);
            setReg(in.rd, r);
            setIccLogic(r);
            break;
          }
          case Op::Sll:
            setReg(in.rd, reg(in.rs1) << (src2(in) & 31));
            break;
          case Op::Srl:
            setReg(in.rd, reg(in.rs1) >> (src2(in) & 31));
            break;
          case Op::Sra:
            setReg(in.rd, static_cast<uint32_t>(
                static_cast<int32_t>(reg(in.rs1)) >>
                (src2(in) & 31)));
            break;
          case Op::Umul: {
            uint64_t p = static_cast<uint64_t>(reg(in.rs1)) *
                         src2(in);
            setReg(in.rd, static_cast<uint32_t>(p));
            yreg = static_cast<uint32_t>(p >> 32);
            break;
          }
          case Op::Smul: {
            int64_t p = static_cast<int64_t>(
                            static_cast<int32_t>(reg(in.rs1))) *
                        static_cast<int32_t>(src2(in));
            setReg(in.rd, static_cast<uint32_t>(p));
            yreg = static_cast<uint32_t>(
                static_cast<uint64_t>(p) >> 32);
            break;
          }
          case Op::Udiv: {
            uint64_t dividend = (static_cast<uint64_t>(yreg) << 32) |
                                reg(in.rs1);
            uint32_t divisor = src2(in);
            if (divisor == 0)
                fatal("emulator: udiv by zero at 0x%x", cur_pc);
            uint64_t q = dividend / divisor;
            setReg(in.rd, q > 0xffffffffull
                              ? 0xffffffffu
                              : static_cast<uint32_t>(q));
            break;
          }
          case Op::Sdiv: {
            int64_t dividend = static_cast<int64_t>(
                (static_cast<uint64_t>(yreg) << 32) | reg(in.rs1));
            int32_t divisor = static_cast<int32_t>(src2(in));
            if (divisor == 0)
                fatal("emulator: sdiv by zero at 0x%x", cur_pc);
            int64_t q = dividend / divisor;
            if (q > 0x7fffffffll)
                q = 0x7fffffffll;
            if (q < -0x80000000ll)
                q = -0x80000000ll;
            setReg(in.rd, static_cast<uint32_t>(q));
            break;
          }
          case Op::Rdy:
            setReg(in.rd, yreg);
            break;
          case Op::Wry:
            yreg = reg(in.rs1) ^ src2(in);
            break;
          case Op::Sethi:
            setReg(in.rd, in.imm22 << 10);
            break;
          case Op::Nop:
            break;
          case Op::Save: {
            uint32_t v = reg(in.rs1) + src2(in);
            if (++winDepth >= static_cast<int>(cfg.windows) - 1)
                fatal("emulator: register window overflow (depth %d); "
                      "increase Config::windows", winDepth);
            cwp = (cwp + cfg.windows - 1) % cfg.windows;
            setReg(in.rd, v);
            break;
          }
          case Op::Restore: {
            uint32_t v = reg(in.rs1) + src2(in);
            if (--winDepth < -1)
                fatal("emulator: register window underflow at 0x%x",
                      cur_pc);
            cwp = (cwp + 1) % cfg.windows;
            setReg(in.rd, v);
            break;
          }
          case Op::Bicc: {
            bool taken = iccCond(in.cond);
            if (taken)
                next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            if (in.annul && (!taken || in.cond == isa::cond::a))
                annul_next = true;
            break;
          }
          case Op::Fbfcc: {
            bool taken = fccCond(in.cond);
            if (taken)
                next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            if (in.annul && (!taken || in.cond == isa::fcond::a))
                annul_next = true;
            break;
          }
          case Op::Call:
            setReg(isa::reg::o7, cur_pc);
            next_npc = cur_pc + 4 * static_cast<uint32_t>(in.disp);
            break;
          case Op::Jmpl: {
            uint32_t target = reg(in.rs1) + src2(in);
            setReg(in.rd, cur_pc);
            if (target & 3)
                fatal("emulator: misaligned jmpl target 0x%x", target);
            next_npc = target;
            break;
          }
          case Op::Ticc:
            if (iccCond(in.cond)) {
                switch (in.simm13) {
                  case isa::trap::exit_prog:
                    res.exitCode = static_cast<int>(reg(isa::reg::o0));
                    res.exited = true;
                    hasExited = true;
                    savedExitCode = res.exitCode;
                    curPc = pc;
                    curNpc = npc;
                    curAnnul = annul_next;
                    totalRetired += res.instructions;
                    return res;
                  case isa::trap::put_int:
                    res.output += strfmt(
                        "%d\n",
                        static_cast<int32_t>(reg(isa::reg::o0)));
                    break;
                  case isa::trap::put_char:
                    res.output.push_back(static_cast<char>(
                        reg(isa::reg::o0) & 0xff));
                    break;
                  case isa::trap::sink:
                    break;
                  default:
                    fatal("emulator: unknown trap %d at 0x%x",
                          in.simm13, cur_pc);
                }
            }
            break;

          case Op::Ld:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 4, false));
            break;
          case Op::Ldub:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 1, false));
            break;
          case Op::Ldsb:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 1, true));
            break;
          case Op::Lduh:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 2, false));
            break;
          case Op::Ldsh:
            setReg(in.rd, load(reg(in.rs1) + src2(in), 2, true));
            break;
          case Op::Ldd: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned ldd at 0x%x", cur_pc);
            setReg(in.rd & ~1u, load(a, 4, false));
            setReg((in.rd & ~1u) | 1, load(a + 4, 4, false));
            break;
          }
          case Op::St:
            store(reg(in.rs1) + src2(in), 4, reg(in.rd));
            break;
          case Op::Stb:
            store(reg(in.rs1) + src2(in), 1, reg(in.rd));
            break;
          case Op::Sth:
            store(reg(in.rs1) + src2(in), 2, reg(in.rd));
            break;
          case Op::Std: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned std at 0x%x", cur_pc);
            store(a, 4, reg(in.rd & ~1u));
            store(a + 4, 4, reg((in.rd & ~1u) | 1));
            break;
          }
          case Op::Ldf:
            fregs[in.rd] = load(reg(in.rs1) + src2(in), 4, false);
            break;
          case Op::Lddf: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned lddf at 0x%x", cur_pc);
            fregs[in.rd & ~1u] = load(a, 4, false);
            fregs[(in.rd & ~1u) | 1] = load(a + 4, 4, false);
            break;
          }
          case Op::Stf:
            store(reg(in.rs1) + src2(in), 4, fregs[in.rd]);
            break;
          case Op::Stdf: {
            uint32_t a = reg(in.rs1) + src2(in);
            if (a & 7)
                fatal("emulator: misaligned stdf at 0x%x", cur_pc);
            store(a, 4, fregs[in.rd & ~1u]);
            store(a + 4, 4, fregs[(in.rd & ~1u) | 1]);
            break;
          }

          case Op::Fadds:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) + f32(fregs[in.rs2]));
            break;
          case Op::Fsubs:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) - f32(fregs[in.rs2]));
            break;
          case Op::Fmuls:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) * f32(fregs[in.rs2]));
            break;
          case Op::Fdivs:
            fregs[in.rd] = b32(f32(fregs[in.rs1]) / f32(fregs[in.rs2]));
            break;
          case Op::Faddd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) + f64(fpairGet(in.rs2))));
            break;
          case Op::Fsubd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) - f64(fpairGet(in.rs2))));
            break;
          case Op::Fmuld:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) * f64(fpairGet(in.rs2))));
            break;
          case Op::Fdivd:
            fpairSet(in.rd,
                     b64(f64(fpairGet(in.rs1)) / f64(fpairGet(in.rs2))));
            break;
          case Op::Fsqrts:
            fregs[in.rd] = b32(std::sqrt(f32(fregs[in.rs2])));
            break;
          case Op::Fsqrtd:
            fpairSet(in.rd, b64(std::sqrt(f64(fpairGet(in.rs2)))));
            break;
          case Op::Fmovs:
            fregs[in.rd] = fregs[in.rs2];
            break;
          case Op::Fnegs:
            fregs[in.rd] = fregs[in.rs2] ^ 0x80000000u;
            break;
          case Op::Fabss:
            fregs[in.rd] = fregs[in.rs2] & 0x7fffffffu;
            break;
          case Op::Fitos:
            fregs[in.rd] = b32(static_cast<float>(
                static_cast<int32_t>(fregs[in.rs2])));
            break;
          case Op::Fitod:
            fpairSet(in.rd, b64(static_cast<double>(
                static_cast<int32_t>(fregs[in.rs2]))));
            break;
          case Op::Fstoi:
            fregs[in.rd] = static_cast<uint32_t>(
                static_cast<int32_t>(f32(fregs[in.rs2])));
            break;
          case Op::Fdtoi:
            fregs[in.rd] = static_cast<uint32_t>(
                static_cast<int32_t>(f64(fpairGet(in.rs2))));
            break;
          case Op::Fstod:
            fpairSet(in.rd, b64(static_cast<double>(
                f32(fregs[in.rs2]))));
            break;
          case Op::Fdtos:
            fregs[in.rd] = b32(static_cast<float>(
                f64(fpairGet(in.rs2))));
            break;
          case Op::Fcmps: {
            float a = f32(fregs[in.rs1]), b = f32(fregs[in.rs2]);
            fcc = (a != a || b != b) ? 3 : a < b ? 1 : a > b ? 2 : 0;
            break;
          }
          case Op::Fcmpd: {
            double a = f64(fpairGet(in.rs1)), b = f64(fpairGet(in.rs2));
            fcc = (a != a || b != b) ? 3 : a < b ? 1 : a > b ? 2 : 0;
            break;
          }

          case Op::Invalid:
          case Op::NumOps:
            fatal("emulator: invalid opcode at 0x%x", cur_pc);
        }

        pc = next_pc;
        npc = next_npc;
    }
    curPc = pc;
    curNpc = npc;
    curAnnul = annul_next;
    totalRetired += res.instructions;
    return res;
}

} // namespace eel::sim

#endif // EEL_SIM_EMULATOR_HH
