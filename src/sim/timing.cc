#include "src/sim/timing.hh"

#include <algorithm>

#include "src/obs/trace.hh"
#include "src/support/logging.hh"

namespace eel::sim {

ICache::ICache(Config cfg) : cfg(cfg)
{
    if (cfg.lineBytes == 0 || cfg.assoc == 0 ||
        cfg.bytes % (cfg.lineBytes * cfg.assoc) != 0)
        fatal("icache: inconsistent geometry");
    numSets = cfg.bytes / (cfg.lineBytes * cfg.assoc);
    tags.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
    valid.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
    lastUse.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
}

bool
ICache::access(uint32_t addr)
{
    ++_accesses;
    uint32_t line = addr / cfg.lineBytes;
    uint32_t set = line % numSets;
    uint32_t tag = line / numSets;
    size_t base = static_cast<size_t>(set) * cfg.assoc;

    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (valid[base + w] && tags[base + w] == tag) {
            lastUse[base + w] = _accesses;
            return false;
        }
    }
    ++_misses;
    // Fill the LRU (or first invalid) way.
    uint32_t victim = 0;
    uint64_t oldest = ~uint64_t(0);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!valid[base + w]) {
            victim = w;
            break;
        }
        if (lastUse[base + w] < oldest) {
            oldest = lastUse[base + w];
            victim = w;
        }
    }
    valid[base + victim] = 1;
    tags[base + victim] = tag;
    lastUse[base + victim] = _accesses;
    return true;
}

TimingSim::TimingSim(const machine::MachineModel &model)
    : TimingSim(model, Config{})
{}

TimingSim::TimingSim(const machine::MachineModel &model, Config cfg)
    : model(model), cfg(cfg), state(model),
      hist(model.issueWidth() + 2, 0)
{
    if (this->cfg.takenBranchPenalty == Config::fromModel)
        this->cfg.takenBranchPenalty = model.branchPenalty();
    if (cfg.useICache)
        _icache = std::make_unique<ICache>(cfg.icache);
}

TimingSim::State
TimingSim::snapshotState() const
{
    return State{state.snapshot(), _cycles,   prevPc, havePrev,
                 curStart,         curCount, haveCur};
}

void
TimingSim::restoreState(const State &s)
{
    state.restore(s.pipe);
    _cycles = s.cycles;
    prevPc = s.prevPc;
    havePrev = s.havePrev;
    curStart = s.curStart;
    curCount = s.curCount;
    haveCur = s.haveCur;
}

void
TimingSim::appendNormalizedKey(std::vector<uint64_t> &out) const
{
    uint64_t f = state.frontier();
    out.push_back(_cycles > f ? _cycles - f : 0);
    out.push_back(prevPc);
    out.push_back(havePrev);
    state.appendNormalizedKey(out);
}

std::vector<uint64_t>
TimingSim::issueHistogram() const
{
    std::vector<uint64_t> out = hist;
    if (haveCur) {
        unsigned bucket = std::min<unsigned>(curCount,
                                             model.issueWidth() + 1);
        out[bucket] += 1;
    }
    return out;
}

TimedRun
timedRun(const exe::Executable &x, const machine::MachineModel &model,
         TimingSim::Config cfg, Emulator::Config emu_cfg)
{
    obs::Span span("sim.timedRun");
    Emulator emu(x, emu_cfg);
    TimingSim timing(model, cfg);
    TimedRun out;
    // Templated run: TimingSim is final, so retire() dispatches
    // directly and inlines into the interpreter loop.
    out.result = emu.run(timing);
    out.cycles = timing.cycles();
    out.seconds = timing.seconds();
    out.ipc = timing.ipc();
    out.issueHistogram = timing.issueHistogram();
    if (timing.icache()) {
        out.icacheMisses = timing.icache()->misses();
        out.icacheAccesses = timing.icache()->accesses();
    }
    out.stallBreakdown = timing.stallBreakdown();
    out.stallCycles = timing.stallCycles();
    return out;
}

} // namespace eel::sim
