#include "src/sim/timing.hh"

#include <algorithm>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/support/logging.hh"

namespace eel::sim {

ICache::ICache(Config cfg) : cfg(cfg)
{
    if (cfg.lineBytes == 0 || cfg.assoc == 0 ||
        cfg.bytes % (cfg.lineBytes * cfg.assoc) != 0)
        fatal("icache: inconsistent geometry");
    numSets = cfg.bytes / (cfg.lineBytes * cfg.assoc);
    tags.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
    valid.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
    lastUse.assign(static_cast<size_t>(numSets) * cfg.assoc, 0);
}

bool
ICache::access(uint32_t addr)
{
    ++_accesses;
    uint32_t line = addr / cfg.lineBytes;
    uint32_t set = line % numSets;
    uint32_t tag = line / numSets;
    size_t base = static_cast<size_t>(set) * cfg.assoc;

    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (valid[base + w] && tags[base + w] == tag) {
            lastUse[base + w] = _accesses;
            return false;
        }
    }
    ++_misses;
    // Fill the LRU (or first invalid) way.
    uint32_t victim = 0;
    uint64_t oldest = ~uint64_t(0);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!valid[base + w]) {
            victim = w;
            break;
        }
        if (lastUse[base + w] < oldest) {
            oldest = lastUse[base + w];
            victim = w;
        }
    }
    valid[base + victim] = 1;
    tags[base + victim] = tag;
    lastUse[base + victim] = _accesses;
    return true;
}

TimingSim::TimingSim(const machine::MachineModel &model)
    : TimingSim(model, Config{})
{}

TimingSim::TimingSim(const machine::MachineModel &model, Config cfg)
    : model(model), cfg(cfg), state(model, cfg.simdHold),
      hist(model.issueWidth() + 2, 0)
{
    if (this->cfg.takenBranchPenalty == Config::fromModel)
        this->cfg.takenBranchPenalty = model.branchPenalty();
    if (cfg.useICache)
        _icache = std::make_unique<ICache>(cfg.icache);
    // The icache is deliberately outside the normalized key (its
    // state is address-history dependent, not translation-invariant),
    // so the memo is forced off under it rather than being wrong.
    memoOn = this->cfg.traceMemo && !cfg.useICache;
    if (memoOn) {
        bufPcs.reserve(kTraceMax);
        bufInsts.reserve(kTraceMax);
        bufJumps.reserve(64);
    }
}

TimingSim::State
TimingSim::snapshotState() const
{
    sync();
    return State{state.snapshot(), _cycles,   prevPc, havePrev,
                 curStart,         curCount, haveCur};
}

void
TimingSim::restoreState(const State &s)
{
    sync();
    state.restore(s.pipe);
    _cycles = s.cycles;
    prevPc = s.prevPc;
    havePrev = s.havePrev;
    curStart = s.curStart;
    curCount = s.curCount;
    haveCur = s.haveCur;
}

void
TimingSim::appendNormalizedKey(std::vector<uint64_t> &out) const
{
    sync();
    uint64_t f = state.frontier();
    out.push_back(_cycles > f ? _cycles - f : 0);
    out.push_back(prevPc);
    out.push_back(havePrev);
    state.appendNormalizedKey(out);
}

void
TimingSim::flushTrace()
{
    const size_t n = bufPcs.size();
    if (!n)
        return;

    // Entry key: everything that determines what replaying the buffer
    // does. The pc stream (start + discontinuities) fixes the
    // instruction sequence and intra-trace bubble pattern; the
    // histogram grouping lead, the cycle accumulator's lead over the
    // frontier and the fetch-redirect state fix the bookkeeping; the
    // rebased pipeline capture fixes every stall. All cycle values
    // are frontier-relative, so recurrences at different absolute
    // cycles match (appendNormalizedKey's invariant).
    const uint64_t f0 = state.frontier();
    keyScratch.clear();
    keyScratch.push_back(bufPcs[0]);
    keyScratch.push_back(n);
    keyScratch.insert(keyScratch.end(), bufJumps.begin(),
                      bufJumps.end());
    keyScratch.push_back(haveCur ? 1 : 0);
    keyScratch.push_back(haveCur ? curCount : 0);
    keyScratch.push_back(haveCur ? f0 - curStart : 0);
    keyScratch.push_back(_cycles > f0 ? _cycles - f0 : 0);
    keyScratch.push_back(prevPc);
    keyScratch.push_back(havePrev ? 1 : 0);
    state.captureRebased(pipeScratch);

    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (uint64_t v : keyScratch)
        mix(v);
    for (uint64_t v : pipeScratch.rowAt)
        mix(v);
    for (int16_t v : pipeScratch.rowFree)
        mix(static_cast<uint16_t>(v));
    for (uint32_t v : pipeScratch.regs)
        mix(v);
    for (uint64_t v : pipeScratch.regVals)
        mix(v);

    std::vector<MemoEntry> &bucket = memoTable[h];
    for (const MemoEntry &e : bucket) {
        if (e.keyHead == keyScratch && e.entryPipe == pipeScratch) {
            applyTrace(e);
            ++memoHits;
            bufPcs.clear();
            bufInsts.clear();
            bufJumps.clear();
            return;
        }
    }

    // Miss: issue the buffer directly and record the deltas it
    // produced, so the next recurrence of this entry state can skip
    // straight to the end state.
    ++memoMisses;
    const uint64_t stalls0 = _stallCycles;
    const obs::StallBreakdown bd0 = _breakdown;
    histScratch = hist;
    for (size_t i = 0; i < n; ++i)
        issueOne(bufPcs[i], bufInsts[i]);

    if (memoEntries < kMemoMaxEntries) {
        MemoEntry e;
        e.keyHead = keyScratch;
        e.entryPipe = pipeScratch;
        state.captureRebased(e.endPipe);
        e.frontierDelta = state.frontier() - f0;
        e.endCyclesLead = _cycles - state.frontier();
        e.endCurStartLead = haveCur ? state.frontier() - curStart : 0;
        e.dInsts = n;
        e.dStalls = _stallCycles - stalls0;
        e.dBreakdown = _breakdown;
        e.dBreakdown -= bd0;
        e.histDelta.resize(hist.size());
        for (size_t k = 0; k < hist.size(); ++k)
            e.histDelta[k] = hist[k] - histScratch[k];
        e.endPrevPc = prevPc;
        e.endCurCount = curCount;
        e.endHaveCur = haveCur;
        bucket.push_back(std::move(e));
        ++memoEntries;
    }
    bufPcs.clear();
    bufInsts.clear();
    bufJumps.clear();
}

void
TimingSim::applyTrace(const MemoEntry &e)
{
    state.applyRebased(e.endPipe, e.frontierDelta);
    const uint64_t f = state.frontier();
    _cycles = f + e.endCyclesLead;
    prevPc = e.endPrevPc;
    havePrev = true;
    _insts += e.dInsts;
    _stallCycles += e.dStalls;
    _breakdown += e.dBreakdown;
    for (size_t k = 0; k < hist.size(); ++k)
        hist[k] += e.histDelta[k];
    haveCur = e.endHaveCur;
    curCount = e.endCurCount;
    curStart = f - e.endCurStartLead;
}

void
TimingSim::flushPipelineMetrics() const
{
    sync();
    static obs::Metric mHits("memo.trace_hits",
                             obs::MetricKind::Counter);
    static obs::Metric mMisses("memo.trace_misses",
                               obs::MetricKind::Counter);
    if (memoHits)
        mHits.add(memoHits);
    if (memoMisses)
        mMisses.add(memoMisses);
    memoHits = 0;
    memoMisses = 0;
    state.flushSimdMetrics();
}

std::vector<uint64_t>
TimingSim::issueHistogram() const
{
    sync();
    std::vector<uint64_t> out = hist;
    if (haveCur) {
        unsigned bucket = std::min<unsigned>(curCount,
                                             model.issueWidth() + 1);
        out[bucket] += 1;
    }
    return out;
}

TimedRun
timedRun(const exe::Executable &x, const machine::MachineModel &model,
         TimingSim::Config cfg, Emulator::Config emu_cfg)
{
    obs::Span span("sim.timedRun");
    Emulator emu(x, emu_cfg);
    TimingSim timing(model, cfg);
    TimedRun out;
    // Templated run: TimingSim is final, so retire() dispatches
    // directly and inlines into the interpreter loop.
    out.result = emu.run(timing);
    out.cycles = timing.cycles();
    out.seconds = timing.seconds();
    out.ipc = timing.ipc();
    out.issueHistogram = timing.issueHistogram();
    if (timing.icache()) {
        out.icacheMisses = timing.icache()->misses();
        out.icacheAccesses = timing.icache()->accesses();
    }
    out.stallBreakdown = timing.stallBreakdown();
    out.stallCycles = timing.stallCycles();
    timing.flushPipelineMetrics();
    return out;
}

TimedRun
timedRun(const exe::Executable &x, const machine::MachineModel &model,
         const RunBudget &budget, TimingSim::Config cfg,
         Emulator::Config emu_cfg)
{
    obs::Span span("sim.timedRunBudget");
    const uint64_t cap = emu_cfg.maxInstructions;
    const uint64_t slice =
        budget.sliceInstructions ? budget.sliceInstructions
                                 : 64 * 1024;
    Emulator emu = budget.decodeStore
                       ? Emulator(x, emu_cfg,
                                  Emulator::decodeText(
                                      x, *budget.decodeStore))
                       : Emulator(x, emu_cfg);
    TimingSim timing(model, cfg);
    TimedRun out;
    while (!emu.finished() && emu.retired() < cap) {
        uint64_t step = std::min(slice, cap - emu.retired());
        RunResult r = emu.run(timing, step);
        out.result.instructions += r.instructions;
        out.result.output += r.output;
        if (emu.finished()) {
            out.result.exited = true;
            out.result.exitCode = r.exitCode;
            break;
        }
        if (budget.cancel && budget.cancel()) {
            out.cancelled = true;
            break;
        }
    }
    out.cycles = timing.cycles();
    out.seconds = timing.seconds();
    out.ipc = timing.ipc();
    out.issueHistogram = timing.issueHistogram();
    if (timing.icache()) {
        out.icacheMisses = timing.icache()->misses();
        out.icacheAccesses = timing.icache()->accesses();
    }
    out.stallBreakdown = timing.stallBreakdown();
    out.stallCycles = timing.stallCycles();
    timing.flushPipelineMetrics();
    return out;
}

} // namespace eel::sim
