#include "src/sim/resultcache.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "src/exe/section_store.hh"
#include "src/obs/metrics.hh"

namespace eel::sim {

namespace fs = std::filesystem;

namespace {

/**
 * Two independent 64-bit accumulation streams over the same input,
 * giving 128-bit keys: FNV-1a-with-finalizer for stream a, the
 * classic hash_combine recurrence for stream b. Collisions are
 * further backed by runSharded's merged-output fatals.
 */
struct H2
{
    uint64_t a = 0xcbf29ce484222325ull;
    uint64_t b = 0x9ae16a3b2f90404full;

    void
    u64(uint64_t v)
    {
        a ^= v;
        a *= 0x100000001b3ull;
        a ^= a >> 29;
        b ^= v + 0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2);
    }
    void u32(uint32_t v) { u64(v); }
    void ub(bool v) { u64(v ? 1 : 0); }
    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u64(static_cast<uint8_t>(c));
    }
    void
    v64(const std::vector<uint64_t> &v)
    {
        u64(v.size());
        for (uint64_t x : v)
            u64(x);
    }
    void
    v32(const std::vector<uint32_t> &v)
    {
        u64(v.size());
        for (uint32_t x : v)
            u64(x);
    }
    void
    v8(const std::vector<uint8_t> &v)
    {
        // Pages and delta payloads: fold 8 bytes per step.
        u64(v.size());
        size_t i = 0;
        for (; i + 8 <= v.size(); i += 8) {
            uint64_t w;
            std::memcpy(&w, v.data() + i, 8);
            u64(w);
        }
        uint64_t tail = 0;
        for (unsigned k = 0; i < v.size(); ++i, ++k)
            tail |= uint64_t(v[i]) << (8 * k);
        u64(tail);
    }
    ResultCache::Key key() const { return {a, b}; }
};

/** Plain FNV-1a over a string (file checksums, manifest digests). */
uint64_t
fnv64(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// ----------------------------------------------------------------
// Entry serialization. Fixed-width little-endian fields; every
// reader is bounds-checked and flips `ok` instead of overrunning,
// so a truncated or bit-flipped payload decodes to a clean reject.

struct Enc
{
    std::string s;

    void
    raw(const void *p, size_t n)
    {
        s.append(static_cast<const char *>(p), n);
    }
    void u8(uint8_t v) { raw(&v, 1); }
    void
    u32(uint32_t v)
    {
        uint8_t b[4];
        for (int i = 0; i < 4; ++i)
            b[i] = uint8_t(v >> (8 * i));
        raw(b, 4);
    }
    void
    u64(uint64_t v)
    {
        uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = uint8_t(v >> (8 * i));
        raw(b, 8);
    }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void ub(bool v) { u8(v ? 1 : 0); }
    void
    blob(const std::string &v)
    {
        u64(v.size());
        raw(v.data(), v.size());
    }
    void
    v8(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size());
    }
    void
    v64(const std::vector<uint64_t> &v)
    {
        u64(v.size());
        for (uint64_t x : v)
            u64(x);
    }
    void
    v32(const std::vector<uint32_t> &v)
    {
        u64(v.size());
        for (uint32_t x : v)
            u32(x);
    }
    void
    v16(const std::vector<int16_t> &v)
    {
        u64(v.size());
        for (int16_t x : v)
            u32(static_cast<uint16_t>(x));
    }
};

struct Dec
{
    const uint8_t *p, *e;
    bool ok = true;

    Dec(const std::string &s)
        : p(reinterpret_cast<const uint8_t *>(s.data())),
          e(p + s.size())
    {
    }

    bool
    need(size_t n)
    {
        if (!ok || size_t(e - p) < n) {
            ok = false;
            return false;
        }
        return true;
    }
    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return *p++;
    }
    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(p[i]) << (8 * i);
        p += 4;
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(p[i]) << (8 * i);
        p += 8;
        return v;
    }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    bool
    ub()
    {
        uint8_t v = u8();
        if (v > 1)
            ok = false;
        return v == 1;
    }
    std::string
    blob()
    {
        uint64_t n = u64();
        if (!need(n))
            return {};
        std::string v(reinterpret_cast<const char *>(p), n);
        p += n;
        return v;
    }
    std::vector<uint8_t>
    v8()
    {
        uint64_t n = u64();
        if (!need(n))
            return {};
        std::vector<uint8_t> v(p, p + n);
        p += n;
        return v;
    }
    std::vector<uint64_t>
    v64()
    {
        uint64_t n = u64();
        if (!ok || n > size_t(e - p) / 8) {
            ok = false;
            return {};
        }
        std::vector<uint64_t> v(n);
        for (auto &x : v)
            x = u64();
        return v;
    }
    std::vector<uint32_t>
    v32()
    {
        uint64_t n = u64();
        if (!ok || n > size_t(e - p) / 4) {
            ok = false;
            return {};
        }
        std::vector<uint32_t> v(n);
        for (auto &x : v)
            x = u32();
        return v;
    }
    std::vector<int16_t>
    v16()
    {
        uint64_t n = u64();
        if (!ok || n > size_t(e - p) / 4) {
            ok = false;
            return {};
        }
        std::vector<int16_t> v(n);
        for (auto &x : v)
            x = static_cast<int16_t>(
                static_cast<uint16_t>(u32()));
        return v;
    }
    bool done() const { return ok && p == e; }
};

void
putBreakdown(Enc &o, const obs::StallBreakdown &b)
{
    for (unsigned i = 0; i < obs::numStallReasons; ++i)
        o.u64(b.cycles[i]);
}

void
getBreakdown(Dec &d, obs::StallBreakdown &b)
{
    for (unsigned i = 0; i < obs::numStallReasons; ++i)
        b.cycles[i] = d.u64();
}

void
putTiming(Enc &o, const TimingSim::State &t)
{
    o.v64(t.pipe.slotStamp);
    o.v16(t.pipe.slotFree);
    o.v64(t.pipe.lastRead);
    o.v64(t.pipe.lastWrite);
    o.v64(t.pipe.writeAvail);
    o.u64(t.pipe.frontierCycle);
    o.u64(t.cycles);
    o.u32(t.prevPc);
    o.ub(t.havePrev);
    o.u64(t.curStart);
    o.u32(t.curCount);
    o.ub(t.haveCur);
}

void
getTiming(Dec &d, TimingSim::State &t)
{
    t.pipe.slotStamp = d.v64();
    t.pipe.slotFree = d.v16();
    t.pipe.lastRead = d.v64();
    t.pipe.lastWrite = d.v64();
    t.pipe.writeAvail = d.v64();
    t.pipe.frontierCycle = d.u64();
    t.cycles = d.u64();
    t.prevPc = d.u32();
    t.havePrev = d.ub();
    t.curStart = d.u64();
    t.curCount = d.u32();
    t.haveCur = d.ub();
}

void
putDelta(Enc &o, const MemDelta &m)
{
    o.u32(static_cast<uint32_t>(m.pages.size()));
    for (const MemDelta::Page &pg : m.pages) {
        o.u32(pg.offset);
        o.v8(pg.bytes);
    }
}

bool
getDelta(Dec &d, MemDelta &m)
{
    uint32_t n = d.u32();
    m.pages.clear();
    for (uint32_t i = 0; i < n && d.ok; ++i) {
        MemDelta::Page pg;
        pg.offset = d.u32();
        pg.bytes = d.v8();
        if (pg.bytes.size() > MemDelta::pageBytes)
            d.ok = false;
        m.pages.push_back(std::move(pg));
    }
    return d.ok;
}

void
putResult(Enc &o, const RunResult &r)
{
    o.u64(r.instructions);
    o.i32(r.exitCode);
    o.ub(r.exited);
    o.blob(r.output);
}

void
getResult(Dec &d, RunResult &r)
{
    r.instructions = d.u64();
    r.exitCode = d.i32();
    r.exited = d.ub();
    r.output = d.blob();
}

void
putPairs(Enc &o, const std::vector<std::pair<uint32_t, uint64_t>> &v)
{
    o.u64(v.size());
    for (const auto &[i, h] : v) {
        o.u32(i);
        o.u64(h);
    }
}

std::vector<std::pair<uint32_t, uint64_t>>
getPairs(Dec &d)
{
    uint64_t n = d.u64();
    if (!d.ok || n > size_t(d.e - d.p) / 12) {
        d.ok = false;
        return {};
    }
    std::vector<std::pair<uint32_t, uint64_t>> v(n);
    for (auto &[i, h] : v) {
        i = d.u32();
        h = d.u64();
    }
    return v;
}

std::string
hex(uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        s[i] = digits[v & 15];
    return s;
}

constexpr char kMagic[6] = {'E', 'E', 'L', 'R', 'C', '1'};
constexpr uint8_t kKindShard = 0;
constexpr uint8_t kKindRun = 1;
constexpr uint8_t kKindTimed = 2;

} // namespace

void
ResultCache::noteHit(bool fromDisk, uint64_t Stats::*tier)
{
    static obs::Metric mHits("rescache.hits",
                             obs::MetricKind::Counter);
    static obs::Metric mDisk("rescache.disk_hits",
                             obs::MetricKind::Counter);
    ++st.hits;
    ++(st.*tier);
    mHits.add();
    if (fromDisk) {
        ++st.diskHits;
        mDisk.add();
    }
}

uint64_t
ResultCache::pageHash(const exe::ChunkPtr &c) const
{
    if (cfg.store)
        return cfg.store->contentHash(c);
    return exe::pageContentHash(*c);
}

ResultCache::ResultCache(Config c) : cfg(std::move(c))
{
    if (!cfg.dir.empty())
        loadDiskTier();
}

// ----------------------------------------------------------------
// Key construction.

namespace {

/** Everything besides page contents and machine state that affects
 *  a timing run's output. Engine-selection knobs (dispatch,
 *  simdHold, traceMemo) are proven output-invariant by the
 *  differential fuzz oracle and deliberately excluded. */
void
hashFingerprint(H2 &h, const machine::MachineModel &model,
                const TimingSim::Config &tcfg,
                const Emulator::Config &ecfg, uint64_t interval,
                unsigned warmup)
{
    h.str(model.name());
    h.u64(std::bit_cast<uint64_t>(model.clockMhz()));
    h.u32(model.issueWidth());
    h.u32(model.branchPenalty());
    h.u32(model.maxLatency());
    h.u32(model.numGroups());
    h.u32(model.numUnits());
    for (unsigned u = 0; u < model.numUnits(); ++u)
        h.u32(model.unitCapacity(u));

    unsigned penalty =
        tcfg.takenBranchPenalty == TimingSim::Config::fromModel
            ? model.branchPenalty()
            : tcfg.takenBranchPenalty;
    h.u32(penalty);
    h.ub(tcfg.useICache);
    h.u32(tcfg.icache.bytes);
    h.u32(tcfg.icache.lineBytes);
    h.u32(tcfg.icache.assoc);
    h.u32(tcfg.icacheMissPenalty);
    h.ub(tcfg.collectStalls);

    h.u32(ecfg.windows);
    h.u32(ecfg.stackBytes);
    h.u64(ecfg.maxInstructions);

    h.u64(interval);
    h.u32(warmup);
}

void
hashCheckpointState(H2 &h, const Checkpoint &cp)
{
    const Emulator::State &s = cp.state;
    h.v32(s.wins);
    for (uint32_t g : s.globals)
        h.u32(g);
    for (uint32_t f : s.fpRegs)
        h.u32(f);
    h.u32(s.cwp);
    h.u64(static_cast<uint64_t>(static_cast<int64_t>(s.winDepth)));
    h.u32(s.icc);
    h.u32(s.fcc);
    h.u32(s.y);
    h.u32(s.pc);
    h.u32(s.npc);
    h.ub(s.annul);
    h.ub(s.exited);
    h.u64(static_cast<uint64_t>(
        static_cast<int64_t>(s.exitCode)));
    h.u64(s.retired);
    for (const MemDelta::Page &pg : cp.dataDelta.pages) {
        h.u32(pg.offset);
        h.v8(pg.bytes);
    }
    for (const MemDelta::Page &pg : cp.stackDelta.pages) {
        h.u32(pg.offset);
        h.v8(pg.bytes);
    }
}

} // namespace

ResultCache::ImageKey
ResultCache::imageKey(const exe::Executable &x,
                      const machine::MachineModel &model,
                      const TimingSim::Config &tcfg,
                      const Emulator::Config &ecfg,
                      uint64_t interval, unsigned warmup,
                      const std::vector<uint8_t> *blockLeader)
{
    H2 h;
    hashFingerprint(h, model, tcfg, ecfg, interval, warmup);
    if (blockLeader) {
        h.u64(1);
        h.v8(*blockLeader);
    } else {
        h.u64(0);
    }
    // Pristine data identity: the checkpoints' memory deltas are
    // diffed against the initial data image, so the same delta over
    // different pristine data is different memory — a data edit
    // conservatively invalidates every shard.
    h.u64(x.entry);
    h.u64(x.bssBytes);
    h.u64(x.data.size());
    for (const exe::ChunkPtr &c : x.data.chunkRefs())
        h.u64(pageHash(c));

    ImageKey k;
    k.base = h.key();
    k.leader = blockLeader != nullptr;

    // Text identity extends the base into the whole-image run key;
    // shard keys see text only through their touched-page manifests.
    h.u64(x.text.size());
    k.textPageHash.reserve(x.text.chunkRefs().size());
    for (const exe::ChunkPtr &c : x.text.chunkRefs()) {
        uint64_t ph = pageHash(c);
        k.textPageHash.push_back(ph);
        h.u64(ph);
    }
    k.run = h.key();
    return k;
}

ResultCache::Key
ResultCache::shardKeyWarm(const ImageKey &k, const Checkpoint *cp,
                          uint64_t len, bool isLast) const
{
    H2 h;
    h.u64(k.base.a);
    h.u64(k.base.b);
    h.u64(1);  // flavor: checkpoint + recorded warmup
    h.u64(len);
    h.ub(isLast);
    if (cp) {
        hashCheckpointState(h, *cp);
        h.v32(cp->warmupPcs);
    } else {
        h.u64(0x5ead0000);  // shard 0: starts from reset
    }
    return h.key();
}

ResultCache::Key
ResultCache::shardKeyHandoff(const ImageKey &k, const Checkpoint *cp,
                             const std::vector<uint64_t> &entryKey,
                             uint64_t len, bool isLast) const
{
    H2 h;
    h.u64(k.base.a);
    h.u64(k.base.b);
    h.u64(2);  // flavor: exact handed-off timing state
    h.u64(len);
    h.ub(isLast);
    if (cp)
        hashCheckpointState(h, *cp);
    else
        h.u64(0x5ead0000);
    // The normalized key, not the raw snapshot: equal keys time any
    // future stream identically (appendNormalizedKey's invariant),
    // and the raw snapshot is not translation-invariant.
    h.v64(entryKey);
    return h.key();
}

ResultCache::Key
ResultCache::timedKey(const exe::Executable &x,
                      const machine::MachineModel &model,
                      const TimingSim::Config &tcfg,
                      const Emulator::Config &ecfg)
{
    H2 h;
    h.u64(3);  // flavor: whole serial timed run
    hashFingerprint(h, model, tcfg, ecfg, 0, 0);
    h.u64(x.entry);
    h.u64(x.bssBytes);
    h.u64(x.data.size());
    for (const exe::ChunkPtr &c : x.data.chunkRefs())
        h.u64(pageHash(c));
    h.u64(x.text.size());
    for (const exe::ChunkPtr &c : x.text.chunkRefs())
        h.u64(pageHash(c));
    return h.key();
}

// ----------------------------------------------------------------
// Arch state <-> delta form.

ResultCache::ArchDelta
ResultCache::deltaArch(const Emulator::ArchSnapshot &s,
                       const exe::Executable &x)
{
    ArchDelta d;
    if (s.dataMem.empty() && s.stackMem.empty())
        return d;  // absent (not the last shard)
    d.present = true;
    std::copy(std::begin(s.intRegs), std::end(s.intRegs),
              std::begin(d.intRegs));
    std::copy(std::begin(s.fpRegs), std::end(s.fpRegs),
              std::begin(d.fpRegs));
    d.icc = s.icc;
    d.fcc = s.fcc;
    d.y = s.y;
    d.dataDelta = MemDelta::diff(initialDataImage(x), s.dataMem);
    d.stackDelta = MemDelta::diff(
        std::vector<uint8_t>(s.stackMem.size(), 0), s.stackMem);
    return d;
}

Emulator::ArchSnapshot
ResultCache::rebuildArch(const ArchDelta &d, const exe::Executable &x,
                         const Emulator::Config &ecfg)
{
    Emulator::ArchSnapshot s;
    if (!d.present)
        return s;
    std::copy(std::begin(d.intRegs), std::end(d.intRegs),
              std::begin(s.intRegs));
    std::copy(std::begin(d.fpRegs), std::end(d.fpRegs),
              std::begin(s.fpRegs));
    s.icc = d.icc;
    s.fcc = d.fcc;
    s.y = d.y;
    s.dataMem = initialDataImage(x);
    d.dataDelta.apply(s.dataMem);
    s.stackMem.assign(ecfg.stackBytes, 0);
    d.stackDelta.apply(s.stackMem);
    return s;
}

// ----------------------------------------------------------------
// Entry payloads (shared by the disk tier).

namespace {

void
putArch(Enc &o, const ResultCache::ArchDelta &d)
{
    o.ub(d.present);
    if (!d.present)
        return;
    for (uint32_t r : d.intRegs)
        o.u32(r);
    for (uint32_t r : d.fpRegs)
        o.u32(r);
    o.u32(d.icc);
    o.u32(d.fcc);
    o.u32(d.y);
    putDelta(o, d.dataDelta);
    putDelta(o, d.stackDelta);
}

void
getArch(Dec &d, ResultCache::ArchDelta &a)
{
    a.present = d.ub();
    if (!a.present)
        return;
    for (uint32_t &r : a.intRegs)
        r = d.u32();
    for (uint32_t &r : a.fpRegs)
        r = d.u32();
    a.icc = d.u32();
    a.fcc = d.u32();
    a.y = d.u32();
    getDelta(d, a.dataDelta);
    getDelta(d, a.stackDelta);
}

} // namespace

// ----------------------------------------------------------------
// Tier operations.

bool
ResultCache::lookupShard(const ImageKey &k, const Key &sk,
                         const exe::Executable &x,
                         const Emulator::Config &ecfg,
                         ShardValue &out)
{
    static obs::Metric mMisses("rescache.misses",
                               obs::MetricKind::Counter);
    static obs::Metric mInval("rescache.invalidations",
                              obs::MetricKind::Counter);
    std::lock_guard<std::mutex> lock(mu);
    ++st.lookups;
    auto it = shardTier.find(sk);
    if (it != shardTier.end()) {
        for (const ShardEntry &e : it->second) {
            bool match = true;
            for (const auto &[idx, ph] : e.manifest)
                if (idx >= k.textPageHash.size() ||
                    k.textPageHash[idx] != ph) {
                    match = false;
                    break;
                }
            if (!match)
                continue;
            const StoredShard &v = e.value;
            out.cycles = v.cycles;
            out.insts = v.insts;
            out.hist = v.hist;
            out.breakdown = v.breakdown;
            out.stallCycles = v.stallCycles;
            out.blocks = v.blocks;
            out.perWord.clear();
            if (k.leader) {
                out.perWord.assign(v.perWordSize, 0);
                for (const auto &[w, n] : v.perWordNz)
                    if (w < out.perWord.size())
                        out.perWord[w] = n;
            }
            out.output = v.output;
            out.endState = rebuildArch(v.endState, x, ecfg);
            out.startKey = v.startKey;
            out.endKey = v.endKey;
            out.endTiming = v.endTiming;
            noteHit(e.fromDisk, &Stats::shardHits);
            return true;
        }
        // Candidates existed but an executed page's content changed:
        // this shard must re-run because of the edit.
        ++st.invalidations;
        mInval.add();
    }
    ++st.misses;
    mMisses.add();
    return false;
}

void
ResultCache::storeShard(const ImageKey &k, const Key &sk,
                        const std::vector<uint32_t> &touchedPages,
                        const ShardValue &v, const exe::Executable &x)
{
    ShardEntry e;
    e.manifest.reserve(touchedPages.size());
    for (uint32_t idx : touchedPages)
        if (idx < k.textPageHash.size())
            e.manifest.emplace_back(idx, k.textPageHash[idx]);

    StoredShard &s = e.value;
    s.cycles = v.cycles;
    s.insts = v.insts;
    s.hist = v.hist;
    s.breakdown = v.breakdown;
    s.stallCycles = v.stallCycles;
    s.blocks = v.blocks;
    s.perWordSize = v.perWord.size();
    for (uint32_t w = 0; w < v.perWord.size(); ++w)
        if (v.perWord[w])
            s.perWordNz.emplace_back(w, v.perWord[w]);
    s.output = v.output;
    s.endState = deltaArch(v.endState, x);
    s.startKey = v.startKey;
    s.endKey = v.endKey;
    s.endTiming = v.endTiming;

    std::string payload;
    std::string name;
    std::lock_guard<std::mutex> lock(mu);
    auto &bucket = shardTier[sk];
    for (const ShardEntry &old : bucket)
        if (old.manifest == e.manifest)
            return;  // deterministic values: first store wins
    ++st.stores;
    if (!cfg.dir.empty()) {
        Enc o;
        o.u64(sk.a);
        o.u64(sk.b);
        putPairs(o, e.manifest);
        o.u64(s.cycles);
        o.u64(s.insts);
        o.v64(s.hist);
        putBreakdown(o, s.breakdown);
        o.u64(s.stallCycles);
        o.u64(s.blocks);
        putPairs(o, s.perWordNz);
        o.u64(s.perWordSize);
        o.blob(s.output);
        putArch(o, s.endState);
        o.v64(s.startKey);
        o.v64(s.endKey);
        putTiming(o, s.endTiming);
        payload = std::move(o.s);
        Enc m;
        putPairs(m, e.manifest);
        name = "s" + hex(sk.a) + hex(sk.b) + "-" +
               hex(fnv64(m.s.data(), m.s.size())) + ".rc";
    }
    bucket.push_back(std::move(e));
    if (!name.empty())
        writeEntry(kKindShard, name, payload);
}

bool
ResultCache::lookupRun(const ImageKey &k, const exe::Executable &x,
                       const Emulator::Config &ecfg, RunValue &out)
{
    static obs::Metric mMisses("rescache.misses",
                               obs::MetricKind::Counter);
    std::lock_guard<std::mutex> lock(mu);
    ++st.lookups;
    auto it = runTier.find(k.run);
    if (it == runTier.end()) {
        ++st.misses;
        mMisses.add();
        return false;
    }
    const StoredRun &v = it->second.value;
    out.result = v.result;
    out.cycles = v.cycles;
    out.issueHistogram = v.issueHistogram;
    out.stallBreakdown = v.stallBreakdown;
    out.stallCycles = v.stallCycles;
    out.leaderRetires.clear();
    if (k.leader) {
        out.leaderRetires.assign(v.leaderSize, 0);
        for (const auto &[w, n] : v.leaderNz)
            if (w < out.leaderRetires.size())
                out.leaderRetires[w] = n;
    }
    out.blocksRetired = v.blocksRetired;
    out.finalState = rebuildArch(v.finalState, x, ecfg);
    out.shards = v.shards;
    out.resims = v.resims;
    noteHit(it->second.fromDisk, &Stats::runHits);
    return true;
}

void
ResultCache::storeRun(const ImageKey &k, const exe::Executable &x,
                      const RunValue &v)
{
    RunEntry e;
    StoredRun &s = e.value;
    s.result = v.result;
    s.cycles = v.cycles;
    s.issueHistogram = v.issueHistogram;
    s.stallBreakdown = v.stallBreakdown;
    s.stallCycles = v.stallCycles;
    s.leaderSize = v.leaderRetires.size();
    for (uint32_t w = 0; w < v.leaderRetires.size(); ++w)
        if (v.leaderRetires[w])
            s.leaderNz.emplace_back(w, v.leaderRetires[w]);
    s.blocksRetired = v.blocksRetired;
    s.finalState = deltaArch(v.finalState, x);
    s.shards = v.shards;
    s.resims = v.resims;

    std::lock_guard<std::mutex> lock(mu);
    if (runTier.count(k.run))
        return;
    ++st.stores;
    std::string name, payload;
    if (!cfg.dir.empty()) {
        Enc o;
        o.u64(k.run.a);
        o.u64(k.run.b);
        putResult(o, s.result);
        o.u64(s.cycles);
        o.v64(s.issueHistogram);
        putBreakdown(o, s.stallBreakdown);
        o.u64(s.stallCycles);
        putPairs(o, s.leaderNz);
        o.u64(s.leaderSize);
        o.u64(s.blocksRetired);
        putArch(o, s.finalState);
        o.u64(s.shards);
        o.u64(s.resims);
        payload = std::move(o.s);
        name = "r" + hex(k.run.a) + hex(k.run.b) + ".rc";
    }
    runTier.emplace(k.run, std::move(e));
    if (!name.empty())
        writeEntry(kKindRun, name, payload);
}

bool
ResultCache::lookupTimed(const Key &k, TimedValue &out)
{
    static obs::Metric mMisses("rescache.misses",
                               obs::MetricKind::Counter);
    std::lock_guard<std::mutex> lock(mu);
    ++st.lookups;
    auto it = timedTier.find(k);
    if (it == timedTier.end()) {
        ++st.misses;
        mMisses.add();
        return false;
    }
    out = it->second.value;
    noteHit(it->second.fromDisk, &Stats::timedHits);
    return true;
}

void
ResultCache::storeTimed(const Key &k, const TimedValue &v)
{
    std::lock_guard<std::mutex> lock(mu);
    if (timedTier.count(k))
        return;
    ++st.stores;
    timedTier.emplace(k, TimedEntry{v, false});
    if (!cfg.dir.empty()) {
        Enc o;
        o.u64(k.a);
        o.u64(k.b);
        o.u64(v.instructions);
        o.u64(v.cycles);
        o.i32(v.exitCode);
        o.ub(v.exited);
        o.blob(v.output);
        writeEntry(kKindTimed,
                   "t" + hex(k.a) + hex(k.b) + ".rc", o.s);
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

// ----------------------------------------------------------------
// Disk tier. One file per entry:
//
//   "EELRC1" | u32 version | u8 kind | u64 payloadLen
//   | payload | u64 fnv64(payload)
//
// Writes go to a unique temp name then rename into place, so a
// concurrent reader never sees a half-written entry. Loads verify
// every layer and count a clean reject (never a crash, never a
// poisoned result) for anything malformed.

void
ResultCache::writeEntry(uint8_t kind, const std::string &name,
                        const std::string &payload)
{
    // mu is held: tempSeq and the write ordering stay consistent.
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    std::string tmp = cfg.dir + "/.tmp-" +
                      std::to_string(getpid()) + "-" +
                      std::to_string(++tempSeq);
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return;  // unwritable dir: stay memory-only
        Enc o;
        o.raw(kMagic, sizeof(kMagic));
        o.u32(diskVersion);
        o.u8(kind);
        o.u64(payload.size());
        f.write(o.s.data(), o.s.size());
        f.write(payload.data(), payload.size());
        Enc sum;
        sum.u64(fnv64(payload.data(), payload.size()));
        f.write(sum.s.data(), sum.s.size());
        if (!f)
            return;
    }
    fs::rename(tmp, cfg.dir + "/" + name, ec);
    if (ec)
        fs::remove(tmp, ec);
}

bool
ResultCache::adoptPayload(uint8_t kind, const std::string &payload)
{
    Dec d(payload);
    Key k{d.u64(), d.u64()};
    if (kind == kKindShard) {
        ShardEntry e;
        e.fromDisk = true;
        e.manifest = getPairs(d);
        StoredShard &s = e.value;
        s.cycles = d.u64();
        s.insts = d.u64();
        s.hist = d.v64();
        getBreakdown(d, s.breakdown);
        s.stallCycles = d.u64();
        s.blocks = d.u64();
        s.perWordNz = getPairs(d);
        s.perWordSize = d.u64();
        s.output = d.blob();
        getArch(d, s.endState);
        s.startKey = d.v64();
        s.endKey = d.v64();
        getTiming(d, s.endTiming);
        if (!d.done())
            return false;
        auto &bucket = shardTier[k];
        for (const ShardEntry &old : bucket)
            if (old.manifest == e.manifest)
                return true;
        bucket.push_back(std::move(e));
        return true;
    }
    if (kind == kKindRun) {
        RunEntry e;
        e.fromDisk = true;
        StoredRun &s = e.value;
        getResult(d, s.result);
        s.cycles = d.u64();
        s.issueHistogram = d.v64();
        getBreakdown(d, s.stallBreakdown);
        s.stallCycles = d.u64();
        s.leaderNz = getPairs(d);
        s.leaderSize = d.u64();
        s.blocksRetired = d.u64();
        getArch(d, s.finalState);
        s.shards = d.u64();
        s.resims = d.u64();
        if (!d.done())
            return false;
        runTier.emplace(k, std::move(e));
        return true;
    }
    if (kind == kKindTimed) {
        TimedEntry e;
        e.fromDisk = true;
        e.value.instructions = d.u64();
        e.value.cycles = d.u64();
        e.value.exitCode = d.i32();
        e.value.exited = d.ub();
        e.value.output = d.blob();
        if (!d.done())
            return false;
        timedTier.emplace(k, std::move(e));
        return true;
    }
    return false;
}

void
ResultCache::loadDiskTier()
{
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &de : fs::directory_iterator(cfg.dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != ".rc")
            continue;
        std::ifstream f(de.path(), std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
        const size_t header = sizeof(kMagic) + 4 + 1 + 8;
        bool rejected = true;
        if (f && bytes.size() >= header + 8 &&
            std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0) {
            Dec d(bytes);
            d.p += sizeof(kMagic);
            uint32_t version = d.u32();
            uint8_t kind = d.u8();
            uint64_t len = d.u64();
            if (version == diskVersion &&
                len == bytes.size() - header - 8) {
                std::string payload = bytes.substr(header, len);
                Dec tail(bytes);
                tail.p += header + len;
                uint64_t sum = tail.u64();
                if (sum ==
                        fnv64(payload.data(), payload.size()) &&
                    adoptPayload(kind, payload)) {
                    rejected = false;
                    ++st.diskEntriesLoaded;
                }
            }
        }
        if (rejected)
            ++st.diskRejects;
    }
}

} // namespace eel::sim
