/**
 * @file
 * Sharded timing simulation: replay checkpoint segments in parallel.
 *
 * runSharded() is the library entry the benches (and any future
 * batch-ingest server) build on: one functional capture pass
 * (src/sim/checkpoint) cuts the run into shards of `interval`
 * dynamic instructions, then every shard replays the full timing
 * model concurrently on a support::ThreadPool, each from its
 * checkpoint's machine state. Results merge by shard index — never
 * by completion order — so the output is bit-identical for every
 * jobs value.
 *
 * Boundary-stall correction: a shard's pipeline does not start
 * cold. The replay first issues the checkpoint's recorded warmup
 * trace (the last `warmup` retired pcs before the cut) through the
 * timing model and discards the cycles, instructions, icache and
 * histogram counts accrued up to the cut; the shard contributes only
 * the counter deltas of its own instructions. PipelineState keeps
 * bounded history — a 256-cycle unit ring plus register cycles no
 * more than maxLatency past the issue frontier — and the frontier
 * advances at least one cycle per issueWidth instructions, so a
 * warmup of W instructions reproduces the serial pipeline exactly
 * once W/issueWidth > 256 + maxLatency. The default (1024, width <=
 * 4, latencies < 64) satisfies this with margin: merged cycles,
 * instruction counts and per-block counts equal the serial
 * simulator's bit for bit (tests/sim/test_shard.cc asserts it).
 *
 * The one knowingly approximate configuration is Config::useICache:
 * cache history is unbounded, so each shard's cache only carries
 * warmup-deep history and compulsory misses repeat per shard. The
 * error is bounded by shards x (cache lines + warmup redirects) x
 * missPenalty cycles — measured ~0.13% of total cycles at the
 * default geometry and interval, always positive (repeated misses
 * only add cycles), shrinking with larger intervals or warmup
 * (EXPERIMENTS.md, "Sharded simulation").
 * The issue-width histogram is likewise exact only up to one issue
 * group per boundary.
 */

#ifndef EEL_SIM_SHARD_HH
#define EEL_SIM_SHARD_HH

#include <cstdint>
#include <vector>

#include "src/sim/checkpoint.hh"
#include "src/sim/timing.hh"
#include "src/support/thread_pool.hh"

namespace eel::sim {

struct ShardOptions
{
    /** Dynamic instructions per shard. */
    uint64_t interval = 64 * 1024;
    /** Timing warmup instructions replayed before each cut. */
    unsigned warmup = 1024;
    /** Pool for the replay fan-out (null = run shards serially). */
    support::ThreadPool *pool = nullptr;
    TimingSim::Config timing{};
    Emulator::Config emu{};
    /**
     * Optional per-text-word block-leader bitmap (1 = block start).
     * When set, the replay counts retires of each leader word and
     * the merged per-block dynamic counts come back in
     * ShardedRun::leaderRetires.
     */
    const std::vector<uint8_t> *blockLeader = nullptr;
};

struct ShardStats
{
    size_t shards = 0;
    uint64_t checkpointBytes = 0;  ///< retained checkpoint payload
    double captureSec = 0;         ///< functional capture pass
    double replaySec = 0;          ///< parallel replay wall time
};

struct ShardedRun
{
    RunResult result;  ///< functional result (exit code, output)
    uint64_t cycles = 0;
    double seconds = 0;
    double ipc = 0;
    std::vector<uint64_t> issueHistogram;
    uint64_t icacheMisses = 0;
    uint64_t icacheAccesses = 0;
    /** Leader-word retire counts (empty unless blockLeader given). */
    std::vector<uint64_t> leaderRetires;
    uint64_t blocksRetired = 0;
    /** Architectural state from the last shard's replay emulator. */
    Emulator::ArchSnapshot finalState;
    ShardStats stats;

    /** View as a TimedRun, so shard-aware callers can slot into
     *  timedRun() call sites unchanged. */
    TimedRun toTimedRun() const;
};

/**
 * Simulate x on model with the run fanned out across opts.pool.
 * Equivalent to timedRun() (exactly, for the default perfect-cache
 * config; see the boundary bound above) but with wall-clock close
 * to capture + serial-time / jobs.
 */
ShardedRun runSharded(const exe::Executable &x,
                      const machine::MachineModel &model,
                      const ShardOptions &opts = {});

} // namespace eel::sim

#endif // EEL_SIM_SHARD_HH
