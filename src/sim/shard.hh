/**
 * @file
 * Sharded timing simulation: replay checkpoint segments in parallel.
 *
 * runSharded() is the library entry the benches (and any future
 * batch-ingest server) build on: one functional capture pass
 * (src/sim/checkpoint) cuts the run into shards of `interval`
 * dynamic instructions, then every shard replays the full timing
 * model concurrently on a support::ThreadPool, each from its
 * checkpoint's machine state. Results merge by shard index — never
 * by completion order — so the output is bit-identical for every
 * jobs value.
 *
 * Boundary-stall correction: a shard's pipeline does not start
 * cold. The replay first issues the checkpoint's recorded warmup
 * trace (the last `warmup` retired pcs before the cut) through the
 * timing model and discards the cycles, instructions, icache and
 * histogram counts accrued up to the cut; the shard contributes only
 * the counter deltas of its own instructions. PipelineState keeps
 * bounded history (a 256-cycle unit ring plus register cycles no
 * more than maxLatency past the issue frontier), so a 1024-inst
 * warmup usually reproduces the serial pipeline at the cut — but
 * not always: a stream with two independently saturated chains
 * (fpppp's FP pipe plus the profiling counters' memory traffic, for
 * instance) phase-locks the chains differently from a cold start
 * and never re-synchronizes, at any warmup length. Exactness
 * therefore comes from a validation stitch instead of a warmup
 * bound: every shard records a translation-invariant key of its
 * post-warmup timing state (TimingSim::appendNormalizedKey) plus
 * its raw end state, and a serial walk over the finished shards
 * re-replays any shard whose start key differs from its
 * predecessor's exact end key, continuing from that predecessor's
 * handed-off state. By induction the merged cycles, stall counts,
 * per-reason stall breakdown and per-block counts equal the serial
 * simulator's bit for bit at every interval/warmup/jobs setting
 * (tests/sim/test_shard.cc asserts it, including on the
 * non-converging instrumented-fpppp stream); mis-warmed shards cost
 * one extra serial region replay each (the `shard.stitch_resims`
 * metric counts them), while converged shards — the common case —
 * stay fully parallel.
 *
 * The one knowingly approximate configuration is Config::useICache:
 * cache history is unbounded, so each shard's cache only carries
 * warmup-deep history and compulsory misses repeat per shard. The
 * error is bounded by shards x (cache lines + warmup redirects) x
 * missPenalty cycles — measured ~0.13% of total cycles at the
 * default geometry and interval, always positive (repeated misses
 * only add cycles), shrinking with larger intervals or warmup
 * (EXPERIMENTS.md, "Sharded simulation").
 * The issue-width histogram is likewise exact only up to one issue
 * group per boundary.
 */

#ifndef EEL_SIM_SHARD_HH
#define EEL_SIM_SHARD_HH

#include <cstdint>
#include <vector>

#include "src/sim/checkpoint.hh"
#include "src/sim/timing.hh"
#include "src/support/thread_pool.hh"

namespace eel::sim {

class ResultCache;

struct ShardOptions
{
    /** Dynamic instructions per shard. */
    uint64_t interval = 64 * 1024;
    /** Timing warmup instructions replayed before each cut. */
    unsigned warmup = 1024;
    /** Pool for the replay fan-out (null = run shards serially). */
    support::ThreadPool *pool = nullptr;
    TimingSim::Config timing{};
    Emulator::Config emu{};
    /**
     * Optional per-text-word block-leader bitmap (1 = block start).
     * When set, the replay counts retires of each leader word and
     * the merged per-block dynamic counts come back in
     * ShardedRun::leaderRetires.
     */
    const std::vector<uint8_t> *blockLeader = nullptr;
    /**
     * Optional content-addressed result cache (src/sim/resultcache).
     * Consulted only for the perfect-icache configuration — the same
     * gate as the validation stitch, because a shard's timing state
     * is only self-contained without cache contents. A warm run
     * reuses every shard whose entry state and executed text pages
     * are unchanged; the run-level tier can skip even the capture
     * pass. Cached results are byte-identical to a cold run.
     */
    ResultCache *cache = nullptr;
};

struct ShardStats
{
    size_t shards = 0;
    uint64_t checkpointBytes = 0;  ///< retained checkpoint payload
    double captureSec = 0;         ///< functional capture pass
    double replaySec = 0;          ///< parallel replay + stitch wall time
    /** Shards whose warmup failed validation and were replayed
     *  serially from the predecessor's end state. */
    size_t resims = 0;
    /** Shards satisfied from the result cache (warm or handoff
     *  entries), and whether the whole run was a run-tier hit. */
    size_t cachedShards = 0;
    bool cachedRun = false;
};

struct ShardedRun
{
    RunResult result;  ///< functional result (exit code, output)
    uint64_t cycles = 0;
    double seconds = 0;
    double ipc = 0;
    std::vector<uint64_t> issueHistogram;
    uint64_t icacheMisses = 0;
    uint64_t icacheAccesses = 0;
    /**
     * Per-reason stall attribution (populated only when
     * timing.collectStalls). Warmup-attributed stalls are
     * subtracted per shard, exactly like the cycle counters, and
     * shards merge in index order — so for the perfect-cache
     * config the merged breakdown is bit-equal to the serial
     * simulator's at every interval setting.
     */
    obs::StallBreakdown stallBreakdown;
    uint64_t stallCycles = 0;
    /** Leader-word retire counts (empty unless blockLeader given). */
    std::vector<uint64_t> leaderRetires;
    uint64_t blocksRetired = 0;
    /** Architectural state from the last shard's replay emulator. */
    Emulator::ArchSnapshot finalState;
    ShardStats stats;

    /** View as a TimedRun, so shard-aware callers can slot into
     *  timedRun() call sites unchanged. */
    TimedRun toTimedRun() const;
};

/**
 * Simulate x on model with the run fanned out across opts.pool.
 * Equivalent to timedRun() (exactly, for the default perfect-cache
 * config; see the boundary bound above) but with wall-clock close
 * to capture + serial-time / jobs.
 */
ShardedRun runSharded(const exe::Executable &x,
                      const machine::MachineModel &model,
                      const ShardOptions &opts = {});

} // namespace eel::sim

#endif // EEL_SIM_SHARD_HH
