/**
 * @file
 * Timing simulation of the retired instruction stream through a
 * SADL-derived pipeline model. This is the "hardware" our benchmarks
 * run on: the execution pipelines are exactly the model of §3.2 that
 * the scheduler optimizes against, plus two effects the paper notes
 * the Spawn models deliberately omit — taken-branch fetch redirects
 * and (optionally) instruction cache misses. Those asymmetries are
 * the simulator's analogue of the gap between the scheduler's model
 * and the real SuperSPARC/UltraSPARC.
 */

#ifndef EEL_SIM_TIMING_HH
#define EEL_SIM_TIMING_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "src/machine/pipeline.hh"
#include "src/sim/emulator.hh"

namespace eel::sim {

/** Direct-mapped / set-associative instruction cache model. */
class ICache
{
  public:
    struct Config
    {
        uint32_t bytes = 16 * 1024;
        uint32_t lineBytes = 32;
        uint32_t assoc = 1;
    };

    explicit ICache(Config cfg);

    /** Access the line containing addr; true on miss. */
    bool access(uint32_t addr);

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    double
    missRate() const
    {
        return _accesses ? double(_misses) / double(_accesses) : 0.0;
    }

  private:
    Config cfg;
    uint32_t numSets;
    std::vector<uint32_t> tags;     ///< numSets * assoc
    std::vector<uint8_t> valid;
    std::vector<uint64_t> lastUse;  ///< LRU stamps
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
};

/**
 * TraceSink that issues every retired instruction into a
 * PipelineState and accumulates machine cycles.
 *
 * `final` so Emulator::run<TimingSim> statically binds retire(). A
 * TimingSim instance caches the machine-model timing variant per
 * text address, so it must observe a single executable image for
 * its whole lifetime (timedRun constructs one per run).
 */
class TimingSim final : public TraceSink
{
  public:
    struct Config
    {
        /** Fetch bubble after any control-flow discontinuity;
         *  defaults to the model's branchPenalty() when left at
         *  the fromModel sentinel. */
        static constexpr unsigned fromModel = ~0u;
        unsigned takenBranchPenalty = fromModel;
        /** Model an instruction cache (nullopt = perfect cache). */
        bool useICache = false;
        ICache::Config icache;
        unsigned icacheMissPenalty = 6;
        /** Attribute every stall/bubble cycle to a StallReason
         *  (stallBreakdown()). Off by default: the attribution
         *  branch stays out of the per-retire hot path. */
        bool collectStalls = false;
    };

    explicit TimingSim(const machine::MachineModel &model);
    TimingSim(const machine::MachineModel &model, Config cfg);

    /** Defined inline: this is the hot per-retire path and inlines
     *  into the emulator's templated run loop. */
    void
    retire(uint32_t pc, const isa::Instruction &inst) override
    {
        // A control-flow discontinuity redirects fetch.
        if (havePrev && pc != prevPc + 4 && cfg.takenBranchPenalty) {
            state.fetchBubble(cfg.takenBranchPenalty);
            if (cfg.collectStalls) {
                _breakdown.add(obs::StallReason::BranchRedirect,
                               cfg.takenBranchPenalty);
                _stallCycles += cfg.takenBranchPenalty;
            }
        }
        prevPc = pc;
        havePrev = true;

        if (_icache && _icache->access(pc) && cfg.icacheMissPenalty) {
            state.fetchBubble(cfg.icacheMissPenalty);
            if (cfg.collectStalls) {
                _breakdown.add(obs::StallReason::ICacheMiss,
                               cfg.icacheMissPenalty);
                _stallCycles += cfg.icacheMissPenalty;
            }
        }

        uint32_t word = (pc - exe::textBase) / 4;
        if (word >= planByWord.size())
            planByWord.resize(word + 1);
        machine::ResolvedVariant &rv = planByWord[word];
        if (!rv.variant)
            rv = machine::ResolvedVariant::resolve(model, inst);
        machine::PipelineState::IssueResult r = state.issue(
            rv, cfg.collectStalls ? &_breakdown : nullptr);
        if (cfg.collectStalls)
            _stallCycles += r.stalls;
        ++_insts;
        _cycles = std::max(_cycles, r.doneCycle);

        // Issue-width histogram over entry cycles (monotone).
        if (!haveCur) {
            haveCur = true;
            curStart = r.startCycle;
            curCount = 1;
        } else if (r.startCycle == curStart) {
            ++curCount;
        } else {
            unsigned bucket = std::min<unsigned>(
                curCount, model.issueWidth() + 1);
            hist[bucket] += 1;
            hist[0] += r.startCycle - curStart - 1;
            curStart = r.startCycle;
            curCount = 1;
        }
    }

    /** Total cycles consumed so far. */
    uint64_t cycles() const { return _cycles; }
    uint64_t instructions() const { return _insts; }
    double
    ipc() const
    {
        return _cycles ? double(_insts) / double(_cycles) : 0.0;
    }
    /** Seconds at the model's clock rate. */
    double
    seconds() const
    {
        return double(_cycles) / (model.clockMhz() * 1e6);
    }

    /**
     * Issue-width histogram: hist[k] = cycles in which k
     * instructions entered the pipeline (k = 0 .. issueWidth).
     * Regenerates the paper's §1 motivation numbers.
     */
    std::vector<uint64_t> issueHistogram() const;

    const ICache *icache() const { return _icache.get(); }

    /**
     * Per-reason stall attribution (only populated when
     * cfg.collectStalls). Invariant: stallBreakdown().total()
     * == stallCycles() — every attributed cycle is a stall cycle
     * and vice versa.
     */
    const obs::StallBreakdown &stallBreakdown() const
    {
        return _breakdown;
    }
    uint64_t stallCycles() const { return _stallCycles; }

    /**
     * Everything a successor needs to continue this stream's timing
     * exactly: the pipeline hazard history plus the simulator's own
     * fetch-redirect and cycle-accumulator state. Counters
     * (instructions, stalls, histogram totals) are deliberately
     * excluded — callers measure deltas around a restore. Does not
     * capture icache contents; the sharded stitch pass only runs for
     * the perfect-cache config.
     */
    struct State
    {
        machine::PipelineState::Snapshot pipe;
        uint64_t cycles = 0;
        uint32_t prevPc = 0;
        bool havePrev = false;
        uint64_t curStart = 0;
        unsigned curCount = 0;
        bool haveCur = false;
    };
    State snapshotState() const;
    /** Continue from s (same machine model and executable image);
     *  this sim's counters keep their current values. */
    void restoreState(const State &s);

    /**
     * Translation-invariant key over the state that determines every
     * future retire's cycle and stall contribution (pipeline history
     * rebased to the frontier, the cycle accumulator's lead over it,
     * and the fetch-redirect state). Equal keys => identical
     * cycle/stall/breakdown deltas for any subsequent stream, even
     * from different absolute cycle origins. The issue-width
     * histogram's grouping state is excluded: it is documented as
     * boundary-approximate under sharding.
     */
    void appendNormalizedKey(std::vector<uint64_t> &out) const;

  private:
    const machine::MachineModel &model;
    Config cfg;
    machine::PipelineState state;
    std::unique_ptr<ICache> _icache;

    /**
     * Resolved timing plan per text word ((pc - textBase) / 4),
     * built lazily on first retire of each static instruction.
     * Retiring ~1.5M dynamic instructions per benchmark, the
     * per-retire variant match and register-field decoding were the
     * hottest lookups in the pipeline; see ResolvedVariant.
     */
    std::vector<machine::ResolvedVariant> planByWord;

    uint64_t _cycles = 0;
    uint64_t _insts = 0;
    uint32_t prevPc = 0;
    bool havePrev = false;

    obs::StallBreakdown _breakdown;
    uint64_t _stallCycles = 0;

    // Histogram bookkeeping over issue start cycles.
    std::vector<uint64_t> hist;
    uint64_t curStart = 0;
    unsigned curCount = 0;
    bool haveCur = false;
};

/**
 * Convenience: run the executable on the emulator, feeding the
 * timing model. Returns (functional result, cycles).
 */
struct TimedRun
{
    RunResult result;
    uint64_t cycles = 0;
    double seconds = 0;
    double ipc = 0;
    std::vector<uint64_t> issueHistogram;
    uint64_t icacheMisses = 0;
    uint64_t icacheAccesses = 0;
    /** Populated only under TimingSim::Config::collectStalls. */
    obs::StallBreakdown stallBreakdown;
    uint64_t stallCycles = 0;
};

TimedRun timedRun(const exe::Executable &x,
                  const machine::MachineModel &model,
                  TimingSim::Config cfg = {},
                  Emulator::Config emu_cfg = {});

} // namespace eel::sim

#endif // EEL_SIM_TIMING_HH
