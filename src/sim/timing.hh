/**
 * @file
 * Timing simulation of the retired instruction stream through a
 * SADL-derived pipeline model. This is the "hardware" our benchmarks
 * run on: the execution pipelines are exactly the model of §3.2 that
 * the scheduler optimizes against, plus two effects the paper notes
 * the Spawn models deliberately omit — taken-branch fetch redirects
 * and (optionally) instruction cache misses. Those asymmetries are
 * the simulator's analogue of the gap between the scheduler's model
 * and the real SuperSPARC/UltraSPARC.
 */

#ifndef EEL_SIM_TIMING_HH
#define EEL_SIM_TIMING_HH

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/machine/pipeline.hh"
#include "src/sim/emulator.hh"

namespace eel::sim {

/** Direct-mapped / set-associative instruction cache model. */
class ICache
{
  public:
    struct Config
    {
        uint32_t bytes = 16 * 1024;
        uint32_t lineBytes = 32;
        uint32_t assoc = 1;
    };

    explicit ICache(Config cfg);

    /** Access the line containing addr; true on miss. */
    bool access(uint32_t addr);

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    double
    missRate() const
    {
        return _accesses ? double(_misses) / double(_accesses) : 0.0;
    }

  private:
    Config cfg;
    uint32_t numSets;
    std::vector<uint32_t> tags;     ///< numSets * assoc
    std::vector<uint8_t> valid;
    std::vector<uint64_t> lastUse;  ///< LRU stamps
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
};

/**
 * TraceSink that issues every retired instruction into a
 * PipelineState and accumulates machine cycles.
 *
 * `final` so Emulator::run<TimingSim> statically binds retire(). A
 * TimingSim instance caches the machine-model timing variant per
 * text address, so it must observe a single executable image for
 * its whole lifetime (timedRun constructs one per run).
 */
class TimingSim final : public TraceSink
{
  public:
    struct Config
    {
        /** Fetch bubble after any control-flow discontinuity;
         *  defaults to the model's branchPenalty() when left at
         *  the fromModel sentinel. */
        static constexpr unsigned fromModel = ~0u;
        unsigned takenBranchPenalty = fromModel;
        /** Model an instruction cache (nullopt = perfect cache). */
        bool useICache = false;
        ICache::Config icache;
        unsigned icacheMissPenalty = 6;
        /** Attribute every stall/bubble cycle to a StallReason
         *  (stallBreakdown()). Off by default: the attribution
         *  branch stays out of the per-retire hot path. */
        bool collectStalls = false;
        /** Use the vectorized hold-segment fast path in the pipeline
         *  state (see PipelineState's constructor). Identical output
         *  either way; off pins the scalar reference walk, which the
         *  differential fuzz oracle runs against this engine. */
        bool simdHold = true;
        /**
         * Memoize the timing of repeated instruction traces. Retires
         * are buffered into short straight-line-biased traces; when a
         * trace recurs with an identical translation-invariant entry
         * state (appendNormalizedKey's invariant), its recorded
         * cycle/stall/histogram deltas are applied instead of
         * re-issuing every instruction. Exact — the replay path IS
         * the direct path, and equal normalized states time any
         * future stream identically — so cycles, stall attribution
         * and histograms are bit-identical with the memo on or off
         * (the differential fuzz oracle pins this). Ignored (forced
         * off) under useICache: cache state is deliberately outside
         * the normalized key.
         */
        bool traceMemo = true;
    };

    explicit TimingSim(const machine::MachineModel &model);
    TimingSim(const machine::MachineModel &model, Config cfg);

    /** Defined inline: this is the hot per-retire path and inlines
     *  into the emulator's templated run loop. With the trace memo
     *  on, a retire is just an append to the pending trace buffer;
     *  flushTrace() settles the buffer against the memo table. */
    void
    retire(uint32_t pc, const isa::Instruction &inst) override
    {
        if (memoOn) {
            bufferRetire(pc, inst);
            return;
        }
        issueOne(pc, inst);
    }

    /** Total cycles consumed so far. */
    uint64_t
    cycles() const
    {
        sync();
        return _cycles;
    }
    uint64_t
    instructions() const
    {
        sync();
        return _insts;
    }
    double
    ipc() const
    {
        sync();
        return _cycles ? double(_insts) / double(_cycles) : 0.0;
    }
    /** Seconds at the model's clock rate. */
    double
    seconds() const
    {
        sync();
        return double(_cycles) / (model.clockMhz() * 1e6);
    }

  private:
    /**
     * The direct per-retire path: fetch bubbles, icache, resolved
     * plan lookup, in-order issue, histogram grouping. With the
     * trace memo on this is also the miss/replay path, which is what
     * makes the memo exact: a recorded delta is just this function's
     * effect, re-applied.
     */
    void
    issueOne(uint32_t pc, const isa::Instruction &inst)
    {
        // A control-flow discontinuity redirects fetch.
        if (havePrev && pc != prevPc + 4 && cfg.takenBranchPenalty) {
            state.fetchBubble(cfg.takenBranchPenalty);
            if (cfg.collectStalls) {
                _breakdown.add(obs::StallReason::BranchRedirect,
                               cfg.takenBranchPenalty);
                _stallCycles += cfg.takenBranchPenalty;
            }
        }
        prevPc = pc;
        havePrev = true;

        if (_icache && _icache->access(pc) && cfg.icacheMissPenalty) {
            state.fetchBubble(cfg.icacheMissPenalty);
            if (cfg.collectStalls) {
                _breakdown.add(obs::StallReason::ICacheMiss,
                               cfg.icacheMissPenalty);
                _stallCycles += cfg.icacheMissPenalty;
            }
        }

        uint32_t word = (pc - exe::textBase) / 4;
        if (word >= planByWord.size())
            planByWord.resize(word + 1);
        machine::ResolvedVariant &rv = planByWord[word];
        if (!rv.variant)
            rv = machine::ResolvedVariant::resolve(model, inst);
        machine::PipelineState::IssueResult r = state.issue(
            rv, cfg.collectStalls ? &_breakdown : nullptr);
        if (cfg.collectStalls)
            _stallCycles += r.stalls;
        ++_insts;
        _cycles = std::max(_cycles, r.doneCycle);

        // Issue-width histogram over entry cycles (monotone).
        if (!haveCur) {
            haveCur = true;
            curStart = r.startCycle;
            curCount = 1;
        } else if (r.startCycle == curStart) {
            ++curCount;
        } else {
            unsigned bucket = std::min<unsigned>(
                curCount, model.issueWidth() + 1);
            hist[bucket] += 1;
            hist[0] += r.startCycle - curStart - 1;
            curStart = r.startCycle;
            curCount = 1;
        }
    }

    /**
     * Append one retire to the pending trace buffer. Traces are cut
     * at control-flow discontinuities once they reach kTraceTarget
     * instructions (loop-shaped workloads then produce a small set of
     * recurring multi-block traces), with a hard cap for straight
     * runs. The only work per retire is a compare and three appends;
     * everything else happens once per trace in flushTrace().
     */
    void
    bufferRetire(uint32_t pc, const isa::Instruction &inst)
    {
        if (!bufPcs.empty() && pc != bufPcs.back() + 4) {
            if (bufPcs.size() >= kTraceTarget)
                flushTrace();
            else
                bufJumps.push_back(uint64_t(bufPcs.size()) << 32 | pc);
        }
        bufPcs.push_back(pc);
        bufInsts.push_back(inst);
        if (bufPcs.size() >= kTraceMax)
            flushTrace();
    }

    /**
     * Settle any pending trace buffer so the observable state is
     * exact. Every public reader calls this, which is what keeps the
     * memo invisible: any flush pattern (including the forced cuts
     * sync itself causes) produces bit-identical outputs, because a
     * memo hit applies exactly what replaying the buffer would.
     */
    void
    sync() const
    {
        if (!bufPcs.empty())
            const_cast<TimingSim *>(this)->flushTrace();
    }

  public:
    /**
     * Issue-width histogram: hist[k] = cycles in which k
     * instructions entered the pipeline (k = 0 .. issueWidth).
     * Regenerates the paper's §1 motivation numbers.
     */
    std::vector<uint64_t> issueHistogram() const;

    const ICache *icache() const { return _icache.get(); }

    /**
     * Per-reason stall attribution (only populated when
     * cfg.collectStalls). Invariant: stallBreakdown().total()
     * == stallCycles() — every attributed cycle is a stall cycle
     * and vice versa.
     */
    const obs::StallBreakdown &
    stallBreakdown() const
    {
        sync();
        return _breakdown;
    }
    uint64_t
    stallCycles() const
    {
        sync();
        return _stallCycles;
    }

    /**
     * Everything a successor needs to continue this stream's timing
     * exactly: the pipeline hazard history plus the simulator's own
     * fetch-redirect and cycle-accumulator state. Counters
     * (instructions, stalls, histogram totals) are deliberately
     * excluded — callers measure deltas around a restore. Does not
     * capture icache contents; the sharded stitch pass only runs for
     * the perfect-cache config.
     */
    struct State
    {
        machine::PipelineState::Snapshot pipe;
        uint64_t cycles = 0;
        uint32_t prevPc = 0;
        bool havePrev = false;
        uint64_t curStart = 0;
        unsigned curCount = 0;
        bool haveCur = false;
    };
    State snapshotState() const;
    /** Continue from s (same machine model and executable image);
     *  this sim's counters keep their current values. */
    void restoreState(const State &s);

    /** Fold the pipeline's vectorized-fast-path counters and the
     *  trace memo's hit/miss counts into the obs metrics registry
     *  ("simd.hold_blocks", "memo.trace_hits"); run drivers call
     *  this once per finished run, keeping the hot path free of
     *  shared-counter traffic. */
    void flushPipelineMetrics() const;

    /**
     * Translation-invariant key over the state that determines every
     * future retire's cycle and stall contribution (pipeline history
     * rebased to the frontier, the cycle accumulator's lead over it,
     * and the fetch-redirect state). Equal keys => identical
     * cycle/stall/breakdown deltas for any subsequent stream, even
     * from different absolute cycle origins. The issue-width
     * histogram's grouping state is excluded: it is documented as
     * boundary-approximate under sharding.
     */
    void appendNormalizedKey(std::vector<uint64_t> &out) const;

  private:
    const machine::MachineModel &model;
    Config cfg;
    machine::PipelineState state;
    std::unique_ptr<ICache> _icache;

    /**
     * Resolved timing plan per text word ((pc - textBase) / 4),
     * built lazily on first retire of each static instruction.
     * Retiring ~1.5M dynamic instructions per benchmark, the
     * per-retire variant match and register-field decoding were the
     * hottest lookups in the pipeline; see ResolvedVariant.
     */
    std::vector<machine::ResolvedVariant> planByWord;

    uint64_t _cycles = 0;
    uint64_t _insts = 0;
    uint32_t prevPc = 0;
    bool havePrev = false;

    obs::StallBreakdown _breakdown;
    uint64_t _stallCycles = 0;

    // Histogram bookkeeping over issue start cycles.
    std::vector<uint64_t> hist;
    uint64_t curStart = 0;
    unsigned curCount = 0;
    bool haveCur = false;

    // ------------------------------------------------------------
    // Trace memo (Config::traceMemo). The benchmark workloads are
    // loop-dominated: a handful of static straight-line segments
    // account for nearly all dynamic instructions. Buffering retires
    // into multi-block traces and memoizing each trace's timing
    // deltas against its normalized entry state replaces the per-
    // instruction issue walk with one table hit per ~kTraceTarget
    // instructions on the steady state.

    /**
     * One recorded trace: the entry key (pc stream + grouping +
     * normalized timing state) and the deltas replaying it produced.
     * End-state fields are stored rebased to the end frontier so a
     * hit at any absolute cycle origin can re-apply them.
     */
    struct MemoEntry
    {
        std::vector<uint64_t> keyHead;   ///< see flushTrace()
        machine::PipelineState::RebasedPipe entryPipe;
        machine::PipelineState::RebasedPipe endPipe;
        std::vector<uint64_t> histDelta; ///< per hist bucket
        obs::StallBreakdown dBreakdown;
        uint64_t frontierDelta = 0;      ///< end - entry frontier
        uint64_t endCyclesLead = 0;      ///< _cycles - end frontier
        uint64_t endCurStartLead = 0;    ///< end frontier - curStart
        uint64_t dInsts = 0;
        uint64_t dStalls = 0;
        uint32_t endPrevPc = 0;
        unsigned endCurCount = 0;
        bool endHaveCur = false;
    };

    /** Settle the pending buffer: memo hit applies recorded deltas,
     *  miss replays through issueOne() and records them. */
    void flushTrace();
    /** Jump this sim's state by a recorded trace's deltas. */
    void applyTrace(const MemoEntry &e);

    /** Trace cut policy: prefer ending at a discontinuity once this
     *  long...  */
    static constexpr size_t kTraceTarget = 48;
    /** ...but never buffer a straight run past this. */
    static constexpr size_t kTraceMax = 512;
    /** Recording stops (hits keep working) past this many entries —
     *  a workload diverse enough to blow the cap would mostly miss
     *  anyway, and entries pin snapshots of pipeline state. */
    static constexpr size_t kMemoMaxEntries = size_t(1) << 14;

    bool memoOn = false;  ///< cfg.traceMemo && !cfg.useICache
    std::vector<uint32_t> bufPcs;
    std::vector<isa::Instruction> bufInsts;
    /** Discontinuities in the buffered pc stream: index << 32 |
     *  target pc. With bufPcs[0], reproduces the whole stream. */
    std::vector<uint64_t> bufJumps;
    std::unordered_map<uint64_t, std::vector<MemoEntry>> memoTable;
    size_t memoEntries = 0;
    mutable uint64_t memoHits = 0;
    mutable uint64_t memoMisses = 0;
    // flushTrace() scratch, reused to keep the per-trace cost flat.
    std::vector<uint64_t> keyScratch;
    machine::PipelineState::RebasedPipe pipeScratch;
    std::vector<uint64_t> histScratch;
};

/**
 * Convenience: run the executable on the emulator, feeding the
 * timing model. Returns (functional result, cycles).
 */
struct TimedRun
{
    RunResult result;
    uint64_t cycles = 0;
    double seconds = 0;
    double ipc = 0;
    std::vector<uint64_t> issueHistogram;
    uint64_t icacheMisses = 0;
    uint64_t icacheAccesses = 0;
    /** Populated only under TimingSim::Config::collectStalls. */
    obs::StallBreakdown stallBreakdown;
    uint64_t stallCycles = 0;
    /** True when a RunBudget cancelled the run early; the counters
     *  above then describe the partial run. */
    bool cancelled = false;
};

TimedRun timedRun(const exe::Executable &x,
                  const machine::MachineModel &model,
                  TimingSim::Config cfg = {},
                  Emulator::Config emu_cfg = {});

/**
 * Cooperative cancellation for a timed run. The emulator's cursor
 * makes the interpreter resumable, so the run proceeds in slices of
 * `sliceInstructions` and polls cancel() at each slice boundary —
 * the timing analogue of a shard boundary. A service enforcing a
 * per-request deadline closes over its clock in cancel(); the poll
 * costs one memo sync per slice, so slices stay coarse.
 */
struct RunBudget
{
    /** Polled between slices; return true to stop the run. Null
     *  never cancels (the budget then only slices the run). */
    std::function<bool()> cancel;
    uint64_t sliceInstructions = 64 * 1024;
    /** When set, the emulator's text decode is memoized here
     *  (Emulator::decodeText(x, store)), so repeated requests
     *  against one image share the decode across runs. */
    exe::SectionStore *decodeStore = nullptr;
};

/**
 * timedRun under a budget: identical counters for a run that
 * completes (the slice boundaries are invisible — TimingSim's sync
 * keeps the memo exact at any flush pattern), partial counters with
 * .cancelled set for one that is stopped. emu_cfg.maxInstructions
 * still bounds the whole run.
 */
TimedRun timedRun(const exe::Executable &x,
                  const machine::MachineModel &model,
                  const RunBudget &budget,
                  TimingSim::Config cfg = {},
                  Emulator::Config emu_cfg = {});

} // namespace eel::sim

#endif // EEL_SIM_TIMING_HH
