#include "src/sim/shard.hh"

#include <algorithm>
#include <chrono>

#include "src/support/logging.hh"

namespace eel::sim {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsed(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Feeds the timing model and counts block-leader retires. */
struct ReplaySink final
{
    TimingSim *timing;
    const std::vector<uint8_t> *leader;  ///< may be null
    std::vector<uint64_t> perWord;       ///< sized iff leader
    uint64_t blocks = 0;

    void
    retire(uint32_t pc, const isa::Instruction &inst)
    {
        timing->retire(pc, inst);
        if (leader) {
            uint32_t w = (pc - exe::textBase) / 4;
            if ((*leader)[w]) {
                ++blocks;
                ++perWord[w];
            }
        }
    }
};

/** Counter deltas one shard contributes past its warmup. */
struct ShardOut
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    std::vector<uint64_t> hist;
    uint64_t icMisses = 0;
    uint64_t icAccesses = 0;
    uint64_t blocks = 0;
    std::vector<uint64_t> perWord;
    std::string output;
    Emulator::ArchSnapshot endState;  ///< last shard only
};

} // namespace

TimedRun
ShardedRun::toTimedRun() const
{
    TimedRun tr;
    tr.result = result;
    tr.cycles = cycles;
    tr.seconds = seconds;
    tr.ipc = ipc;
    tr.issueHistogram = issueHistogram;
    tr.icacheMisses = icacheMisses;
    tr.icacheAccesses = icacheAccesses;
    return tr;
}

ShardedRun
runSharded(const exe::Executable &x,
           const machine::MachineModel &model,
           const ShardOptions &opts)
{
    auto text = Emulator::decodeText(x);

    auto t0 = Clock::now();
    CheckpointOptions copts;
    copts.interval = opts.interval;
    copts.warmup = opts.warmup;
    copts.emu = opts.emu;
    CheckpointLog log = captureCheckpoints(x, copts, text);

    ShardedRun out;
    out.stats.captureSec = elapsed(t0);
    out.stats.checkpointBytes = log.bytes();

    const uint64_t total = log.functional.instructions;
    const size_t shards = log.checkpoints.size() + 1;
    out.stats.shards = shards;

    // Shard k replays (start_k, end_k]; the boundaries are the
    // checkpoints' retirement counts.
    auto shardStart = [&](size_t k) {
        return k == 0 ? 0 : log.checkpoints[k - 1].state.retired;
    };
    auto shardEnd = [&](size_t k) {
        return k + 1 < shards ? log.checkpoints[k].state.retired
                              : total;
    };

    std::vector<ShardOut> results(shards);
    auto runShard = [&](size_t k) {
        Emulator emu(x, opts.emu, text);
        if (k > 0)
            emu.restoreState(
                materializeState(x, opts.emu, log.checkpoints[k - 1]));

        TimingSim timing(model, opts.timing);
        if (k > 0) {
            for (uint32_t pc : log.checkpoints[k - 1].warmupPcs)
                timing.retire(pc, (*text)[(pc - exe::textBase) / 4]);
        }
        // Everything accrued so far belongs to earlier shards; this
        // shard contributes only deltas past the cut.
        const uint64_t warmCycles = timing.cycles();
        const std::vector<uint64_t> warmHist = timing.issueHistogram();
        const uint64_t warmMisses =
            timing.icache() ? timing.icache()->misses() : 0;
        const uint64_t warmAccesses =
            timing.icache() ? timing.icache()->accesses() : 0;

        ReplaySink sink{&timing, opts.blockLeader, {}, 0};
        if (opts.blockLeader)
            sink.perWord.assign(x.text.size(), 0);

        RunResult r = emu.run(sink, shardEnd(k) - shardStart(k));

        ShardOut &o = results[k];
        o.cycles = timing.cycles() - warmCycles;
        o.insts = r.instructions;
        o.hist = timing.issueHistogram();
        for (size_t b = 0; b < o.hist.size() && b < warmHist.size();
             ++b)
            o.hist[b] -= std::min(o.hist[b], warmHist[b]);
        if (timing.icache()) {
            o.icMisses = timing.icache()->misses() - warmMisses;
            o.icAccesses = timing.icache()->accesses() - warmAccesses;
        }
        o.blocks = sink.blocks;
        o.perWord = std::move(sink.perWord);
        o.output = std::move(r.output);
        if (k + 1 == shards)
            o.endState = emu.snapshot();
    };

    t0 = Clock::now();
    if (opts.pool && shards > 1) {
        // Cost-sorted dispatch: all shards are interval-sized except
        // the tail, so this mostly matters when the cap or an early
        // exit makes the last shard short.
        std::vector<uint64_t> cost(shards);
        for (size_t k = 0; k < shards; ++k)
            cost[k] = shardEnd(k) - shardStart(k) + opts.warmup;
        opts.pool->parallelFor(shards, cost, runShard);
    } else {
        for (size_t k = 0; k < shards; ++k)
            runShard(k);
    }
    out.stats.replaySec = elapsed(t0);

    // Deterministic reduction: fold in shard order, so the merged
    // result is independent of how the pool interleaved the replays.
    out.result = log.functional;
    if (opts.blockLeader)
        out.leaderRetires.assign(x.text.size(), 0);
    std::string replayOutput;
    uint64_t insts = 0;
    for (const ShardOut &o : results) {
        out.cycles += o.cycles;
        insts += o.insts;
        if (out.issueHistogram.size() < o.hist.size())
            out.issueHistogram.resize(o.hist.size(), 0);
        for (size_t b = 0; b < o.hist.size(); ++b)
            out.issueHistogram[b] += o.hist[b];
        out.icacheMisses += o.icMisses;
        out.icacheAccesses += o.icAccesses;
        out.blocksRetired += o.blocks;
        for (size_t w = 0; w < o.perWord.size(); ++w)
            out.leaderRetires[w] += o.perWord[w];
        replayOutput += o.output;
    }
    // Replay fidelity: the shards re-execute exactly the capture
    // pass's instruction stream, so any divergence here is a bug in
    // checkpoint save/restore, not a property of the workload.
    if (insts != total)
        fatal("shard: replays retired %llu instructions, capture "
              "pass %llu", (unsigned long long)insts,
              (unsigned long long)total);
    if (replayOutput != log.functional.output)
        fatal("shard: replay output diverged from the capture pass");

    out.seconds = double(out.cycles) / (model.clockMhz() * 1e6);
    out.ipc = out.cycles ? double(insts) / double(out.cycles) : 0.0;
    out.finalState = results.back().endState;
    return out;
}

} // namespace eel::sim
