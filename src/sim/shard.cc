#include "src/sim/shard.hh"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/sim/resultcache.hh"
#include "src/support/logging.hh"

namespace eel::sim {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsed(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Feeds the timing model and counts block-leader retires. */
struct ReplaySink final
{
    TimingSim *timing;
    const std::vector<uint8_t> *leader;  ///< may be null
    std::vector<uint64_t> perWord;       ///< sized iff leader
    uint64_t blocks = 0;
    /** Page-touch bitmap (one byte per text page), set for every
     *  retired pc when the result cache is recording a manifest. */
    uint8_t *touched = nullptr;

    void
    retire(uint32_t pc, const isa::Instruction &inst)
    {
        timing->retire(pc, inst);
        if (touched)
            touched[(pc - exe::textBase) / exe::Chunk::bytes] = 1;
        if (leader) {
            uint32_t w = (pc - exe::textBase) / 4;
            if ((*leader)[w]) {
                ++blocks;
                ++perWord[w];
            }
        }
    }
};

/** Counter deltas one shard contributes past its warmup. */
struct ShardOut
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    std::vector<uint64_t> hist;
    uint64_t icMisses = 0;
    uint64_t icAccesses = 0;
    obs::StallBreakdown breakdown;
    uint64_t stallCycles = 0;
    uint64_t blocks = 0;
    std::vector<uint64_t> perWord;
    std::string output;
    Emulator::ArchSnapshot endState;  ///< last shard only

    // Stitch-validation records (perfect-cache config only): the
    // normalized timing state this shard measured from, the state it
    // ended in, and that end state raw, so a mis-warmed successor
    // can be replayed from it.
    std::vector<uint64_t> startKey, endKey;
    TimingSim::State endTiming;

    /** Text pages this shard's replay (incl. warmup) executed; sized
     *  only while the result cache records manifests. */
    std::vector<uint8_t> touched;
};

/** Adopt a cached shard result (icache counters are zero by the
 *  cache's perfect-icache gate). */
void
adoptShardValue(ShardOut &o, ResultCache::ShardValue &&v)
{
    o.cycles = v.cycles;
    o.insts = v.insts;
    o.hist = std::move(v.hist);
    o.icMisses = 0;
    o.icAccesses = 0;
    o.breakdown = v.breakdown;
    o.stallCycles = v.stallCycles;
    o.blocks = v.blocks;
    o.perWord = std::move(v.perWord);
    o.output = std::move(v.output);
    o.endState = std::move(v.endState);
    o.startKey = std::move(v.startKey);
    o.endKey = std::move(v.endKey);
    o.endTiming = std::move(v.endTiming);
}

/** The per-shard record, as the cache stores it. */
ResultCache::ShardValue
toShardValue(const ShardOut &o)
{
    ResultCache::ShardValue v;
    v.cycles = o.cycles;
    v.insts = o.insts;
    v.hist = o.hist;
    v.breakdown = o.breakdown;
    v.stallCycles = o.stallCycles;
    v.blocks = o.blocks;
    v.perWord = o.perWord;
    v.output = o.output;
    v.endState = o.endState;
    v.startKey = o.startKey;
    v.endKey = o.endKey;
    v.endTiming = o.endTiming;
    return v;
}

std::vector<uint32_t>
touchedPageList(const std::vector<uint8_t> &touched)
{
    std::vector<uint32_t> pages;
    for (uint32_t i = 0; i < touched.size(); ++i)
        if (touched[i])
            pages.push_back(i);
    return pages;
}

} // namespace

TimedRun
ShardedRun::toTimedRun() const
{
    TimedRun tr;
    tr.result = result;
    tr.cycles = cycles;
    tr.seconds = seconds;
    tr.ipc = ipc;
    tr.issueHistogram = issueHistogram;
    tr.icacheMisses = icacheMisses;
    tr.icacheAccesses = icacheAccesses;
    tr.stallBreakdown = stallBreakdown;
    tr.stallCycles = stallCycles;
    return tr;
}

ShardedRun
runSharded(const exe::Executable &x,
           const machine::MachineModel &model,
           const ShardOptions &opts)
{
    auto text = Emulator::decodeText(x);

    // The cache is gated exactly like the validation stitch: without
    // an icache the timing state is self-contained, so cached results
    // are byte-identical to a cold run.
    const bool useCache = opts.cache && !opts.timing.useICache;
    ResultCache::ImageKey ikey;
    if (useCache) {
        ikey = opts.cache->imageKey(x, model, opts.timing, opts.emu,
                                    opts.interval, opts.warmup,
                                    opts.blockLeader);
        // Run-level tier: an image whose every text+data page is
        // unchanged skips even the functional capture pass.
        ResultCache::RunValue rv;
        if (opts.cache->lookupRun(ikey, x, opts.emu, rv)) {
            ShardedRun hit;
            hit.result = rv.result;
            hit.cycles = rv.cycles;
            hit.issueHistogram = std::move(rv.issueHistogram);
            hit.stallBreakdown = rv.stallBreakdown;
            hit.stallCycles = rv.stallCycles;
            hit.leaderRetires = std::move(rv.leaderRetires);
            hit.blocksRetired = rv.blocksRetired;
            hit.finalState = std::move(rv.finalState);
            hit.seconds =
                double(hit.cycles) / (model.clockMhz() * 1e6);
            hit.ipc = hit.cycles ? double(hit.result.instructions) /
                                       double(hit.cycles)
                                 : 0.0;
            hit.stats.shards = rv.shards;
            hit.stats.resims = rv.resims;
            hit.stats.cachedRun = true;
            return hit;
        }
    }

    auto t0 = Clock::now();
    CheckpointOptions copts;
    copts.interval = opts.interval;
    copts.warmup = opts.warmup;
    copts.emu = opts.emu;
    CheckpointLog log;
    {
        obs::Span span("shard.capture");
        log = captureCheckpoints(x, copts, text);
    }

    ShardedRun out;
    out.stats.captureSec = elapsed(t0);
    out.stats.checkpointBytes = log.bytes();

    const uint64_t total = log.functional.instructions;
    const size_t shards = log.checkpoints.size() + 1;
    out.stats.shards = shards;

    // Shard k replays (start_k, end_k]; the boundaries are the
    // checkpoints' retirement counts.
    auto shardStart = [&](size_t k) {
        return k == 0 ? 0 : log.checkpoints[k - 1].state.retired;
    };
    auto shardEnd = [&](size_t k) {
        return k + 1 < shards ? log.checkpoints[k].state.retired
                              : total;
    };

    // Validation + handoff only works when the timing state is
    // self-contained; icache contents are not snapshotted (that
    // config is documented approximate anyway).
    const bool validate = !opts.timing.useICache;

    std::vector<ShardOut> results(shards);
    // Replay shard k's region. A null handoff starts the timing
    // model cold and warms it on the checkpoint's recorded pc tail
    // (optimistic parallel pass); a non-null handoff continues from
    // the predecessor's exact end state (stitch resimulation).
    auto replayRegion = [&](size_t k, const TimingSim::State *handoff) {
        Emulator emu(x, opts.emu, text);
        // Fresh emulator => pristine images, so the checkpoint's page
        // deltas can be patched in place (no image materialization).
        if (k > 0)
            restoreCheckpoint(emu, log.checkpoints[k - 1]);

        ShardOut &o = results[k];
        if (useCache)
            o.touched.assign(x.text.chunkRefs().size(), 0);

        TimingSim timing(model, opts.timing);
        if (handoff) {
            timing.restoreState(*handoff);
        } else if (k > 0) {
            // Warmup pcs count as touches: the instructions replayed
            // here come from the current text, so an edit to a page
            // only the warmup executes still changes the timing state
            // at the cut.
            for (uint32_t pc : log.checkpoints[k - 1].warmupPcs) {
                timing.retire(pc, (*text)[(pc - exe::textBase) / 4]);
                if (useCache)
                    o.touched[(pc - exe::textBase) /
                              exe::Chunk::bytes] = 1;
            }
        }
        if (validate) {
            o.startKey.clear();
            timing.appendNormalizedKey(o.startKey);
        }
        // Everything accrued so far belongs to earlier shards; this
        // shard contributes only deltas past the cut.
        const uint64_t warmCycles = timing.cycles();
        const std::vector<uint64_t> warmHist = timing.issueHistogram();
        const uint64_t warmMisses =
            timing.icache() ? timing.icache()->misses() : 0;
        const uint64_t warmAccesses =
            timing.icache() ? timing.icache()->accesses() : 0;
        // Stall counters are monotone, so the warmup's share
        // subtracts exactly (per reason).
        const obs::StallBreakdown warmBrk = timing.stallBreakdown();
        const uint64_t warmStall = timing.stallCycles();

        ReplaySink sink{&timing, opts.blockLeader, {}, 0,
                        useCache ? o.touched.data() : nullptr};
        if (opts.blockLeader)
            sink.perWord.assign(x.text.size(), 0);

        RunResult r = emu.run(sink, shardEnd(k) - shardStart(k));

        o.cycles = timing.cycles() - warmCycles;
        o.insts = r.instructions;
        o.hist = timing.issueHistogram();
        for (size_t b = 0; b < o.hist.size() && b < warmHist.size();
             ++b)
            o.hist[b] -= std::min(o.hist[b], warmHist[b]);
        if (timing.icache()) {
            o.icMisses = timing.icache()->misses() - warmMisses;
            o.icAccesses = timing.icache()->accesses() - warmAccesses;
        }
        o.breakdown = timing.stallBreakdown();
        o.breakdown -= warmBrk;
        o.stallCycles = timing.stallCycles() - warmStall;
        o.blocks = sink.blocks;
        o.perWord = std::move(sink.perWord);
        o.output = std::move(r.output);
        if (k + 1 == shards)
            o.endState = emu.snapshot();
        if (validate) {
            o.endTiming = timing.snapshotState();
            o.endKey.clear();
            timing.appendNormalizedKey(o.endKey);
        }
        timing.flushPipelineMetrics();
    };
    // Shard-tier lookups run up front on the calling thread; only
    // the misses are dispatched to the pool. A shard hits when its
    // entry state (checkpoint + recorded warmup) and every text page
    // it executed are unchanged — so after an edit, exactly the
    // shards that execute the edited pages replay.
    std::vector<ResultCache::Key> warmKey(useCache ? shards : 0);
    std::vector<char> cached(shards, 0);
    if (useCache) {
        for (size_t k = 0; k < shards; ++k) {
            const Checkpoint *cp =
                k ? &log.checkpoints[k - 1] : nullptr;
            warmKey[k] = opts.cache->shardKeyWarm(
                ikey, cp, shardEnd(k) - shardStart(k),
                k + 1 == shards);
            ResultCache::ShardValue sv;
            if (opts.cache->lookupShard(ikey, warmKey[k], x,
                                        opts.emu, sv)) {
                adoptShardValue(results[k], std::move(sv));
                cached[k] = 1;
                ++out.stats.cachedShards;
            }
        }
    }

    auto runShard = [&](size_t k) {
        obs::Span span("shard.replay." + std::to_string(k));
        replayRegion(k, nullptr);
        if (useCache)
            opts.cache->storeShard(ikey, warmKey[k],
                                   touchedPageList(results[k].touched),
                                   toShardValue(results[k]), x);
    };

    t0 = Clock::now();
    std::vector<size_t> missIdx;
    missIdx.reserve(shards);
    for (size_t k = 0; k < shards; ++k)
        if (!cached[k])
            missIdx.push_back(k);
    if (opts.pool && missIdx.size() > 1) {
        // Cost-sorted dispatch: all shards are interval-sized except
        // the tail, so this mostly matters when the cap or an early
        // exit makes the last shard short.
        std::vector<uint64_t> cost(missIdx.size());
        for (size_t i = 0; i < missIdx.size(); ++i)
            cost[i] = shardEnd(missIdx[i]) - shardStart(missIdx[i]) +
                      opts.warmup;
        opts.pool->parallelFor(missIdx.size(), cost, [&](size_t i) {
            runShard(missIdx[i]);
        });
    } else {
        for (size_t k : missIdx)
            runShard(k);
    }

    // Stitch pass: warmup replay only reproduces the serial pipeline
    // when the stream re-synchronizes from a cold start; streams
    // with independently saturated chains (e.g. an FP pipe plus the
    // profiling counters' memory traffic) can phase-lock differently
    // and never converge, no matter how long the warmup. Walking the
    // shards in order, shard 0 is exact by construction (it starts
    // from reset, like the serial run), and shard k is exact iff its
    // post-warmup state matches its predecessor's exact end state
    // under the translation-invariant key. A mismatched shard is
    // replayed from the predecessor's handed-off end state, which
    // restores the induction — so the merged cycle, stall and
    // per-reason counters are bit-equal to the serial simulator's
    // for every interval/warmup setting, while matched shards (the
    // common case) keep the fully parallel path.
    if (validate && shards > 1) {
        obs::Span span("shard.stitch");
        static obs::Metric mResims("shard.stitch_resims",
                                   obs::MetricKind::Counter);
        for (size_t k = 1; k < shards; ++k) {
            if (results[k].startKey == results[k - 1].endKey)
                continue;
            if (useCache) {
                // Resimulations get their own cache flavor, keyed on
                // the predecessor's exact (normalized) end state
                // instead of the warmup trace — so a warm re-run of a
                // non-converging stream skips even its stitch work.
                const Checkpoint *cp = &log.checkpoints[k - 1];
                ResultCache::Key hk = opts.cache->shardKeyHandoff(
                    ikey, cp, results[k - 1].endKey,
                    shardEnd(k) - shardStart(k), k + 1 == shards);
                ResultCache::ShardValue sv;
                if (opts.cache->lookupShard(ikey, hk, x, opts.emu,
                                            sv)) {
                    adoptShardValue(results[k], std::move(sv));
                    ++out.stats.cachedShards;
                    continue;
                }
                replayRegion(k, &results[k - 1].endTiming);
                opts.cache->storeShard(
                    ikey, hk, touchedPageList(results[k].touched),
                    toShardValue(results[k]), x);
            } else {
                replayRegion(k, &results[k - 1].endTiming);
            }
            mResims.add();
            ++out.stats.resims;
        }
    }
    out.stats.replaySec = elapsed(t0);

    // Deterministic reduction: fold in shard order, so the merged
    // result is independent of how the pool interleaved the replays.
    out.result = log.functional;
    if (opts.blockLeader)
        out.leaderRetires.assign(x.text.size(), 0);
    std::string replayOutput;
    uint64_t insts = 0;
    for (const ShardOut &o : results) {
        out.cycles += o.cycles;
        insts += o.insts;
        if (out.issueHistogram.size() < o.hist.size())
            out.issueHistogram.resize(o.hist.size(), 0);
        for (size_t b = 0; b < o.hist.size(); ++b)
            out.issueHistogram[b] += o.hist[b];
        out.icacheMisses += o.icMisses;
        out.icacheAccesses += o.icAccesses;
        out.stallBreakdown += o.breakdown;
        out.stallCycles += o.stallCycles;
        out.blocksRetired += o.blocks;
        for (size_t w = 0; w < o.perWord.size(); ++w)
            out.leaderRetires[w] += o.perWord[w];
        replayOutput += o.output;
    }
    // Replay fidelity: the shards re-execute exactly the capture
    // pass's instruction stream, so any divergence here is a bug in
    // checkpoint save/restore, not a property of the workload.
    if (insts != total)
        fatal("shard: replays retired %llu instructions, capture "
              "pass %llu", (unsigned long long)insts,
              (unsigned long long)total);
    if (replayOutput != log.functional.output)
        fatal("shard: replay output diverged from the capture pass");

    out.seconds = double(out.cycles) / (model.clockMhz() * 1e6);
    out.ipc = out.cycles ? double(insts) / double(out.cycles) : 0.0;
    out.finalState = results.back().endState;

    if (useCache) {
        ResultCache::RunValue rv;
        rv.result = out.result;
        rv.cycles = out.cycles;
        rv.issueHistogram = out.issueHistogram;
        rv.stallBreakdown = out.stallBreakdown;
        rv.stallCycles = out.stallCycles;
        rv.leaderRetires = out.leaderRetires;
        rv.blocksRetired = out.blocksRetired;
        rv.finalState = out.finalState;
        rv.shards = shards;
        rv.resims = out.stats.resims;
        opts.cache->storeRun(ikey, x, rv);
    }
    return out;
}

} // namespace eel::sim
