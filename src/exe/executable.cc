#include "src/exe/executable.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "src/isa/instruction.hh"
#include "src/support/logging.hh"

namespace eel::exe {

namespace {

constexpr char magic[4] = {'X', 'E', 'F', '1'};

void
put32(std::ostream &os, uint32_t v)
{
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16),
                 static_cast<char>(v >> 24)};
    os.write(b, 4);
}

uint32_t
get32(std::istream &is)
{
    unsigned char b[4];
    is.read(reinterpret_cast<char *>(b), 4);
    return b[0] | (b[1] << 8) | (b[2] << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
}

void
putStr(std::ostream &os, const std::string &s)
{
    put32(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getStr(std::istream &is)
{
    uint32_t n = get32(is);
    if (n > (1u << 20))
        fatal("xef: corrupt string length %u", n);
    std::string s(n, '\0');
    is.read(s.data(), n);
    return s;
}

} // namespace

const Symbol *
Executable::findSymbol(const std::string &name) const
{
    for (const Symbol &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

Symbol *
Executable::findSymbol(const std::string &name)
{
    for (Symbol &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

uint32_t
Executable::addBss(const std::string &sym_name, uint32_t bytes)
{
    bssBytes = (bssBytes + 7) & ~7u;
    uint32_t addr = bssBase() + bssBytes;
    bssBytes += bytes;
    symbols.push_back(Symbol{sym_name, addr, bytes, false});
    return addr;
}

void
Executable::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("xef: cannot write '%s'", path.c_str());
    os.write(magic, 4);
    put32(os, entry);
    put32(os, static_cast<uint32_t>(text.size()));
    for (uint32_t w : text)
        put32(os, w);
    put32(os, static_cast<uint32_t>(data.size()));
    os.write(reinterpret_cast<const char *>(data.data()),
             static_cast<std::streamsize>(data.size()));
    put32(os, bssBytes);
    put32(os, static_cast<uint32_t>(symbols.size()));
    for (const Symbol &s : symbols) {
        putStr(os, s.name);
        put32(os, s.addr);
        put32(os, s.size);
        put32(os, s.isFunc ? 1 : 0);
    }
    if (!os)
        fatal("xef: write to '%s' failed", path.c_str());
}

Executable
Executable::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("xef: cannot read '%s'", path.c_str());
    char m[4];
    is.read(m, 4);
    if (std::memcmp(m, magic, 4) != 0)
        fatal("xef: '%s' is not an XEF file", path.c_str());
    Executable x;
    x.entry = get32(is);
    uint32_t nwords = get32(is);
    if (nwords > (textLimit - textBase) / 4)
        fatal("xef: '%s': text too large", path.c_str());
    x.text.resize(nwords);
    for (uint32_t &w : x.text)
        w = get32(is);
    uint32_t nd = get32(is);
    x.data.resize(nd);
    is.read(reinterpret_cast<char *>(x.data.data()), nd);
    x.bssBytes = get32(is);
    uint32_t ns = get32(is);
    for (uint32_t i = 0; i < ns; ++i) {
        Symbol s;
        s.name = getStr(is);
        s.addr = get32(is);
        s.size = get32(is);
        s.isFunc = get32(is) != 0;
        x.symbols.push_back(std::move(s));
    }
    if (!is)
        fatal("xef: '%s' truncated", path.c_str());
    return x;
}

std::string
Executable::disassembleText() const
{
    std::map<uint32_t, const Symbol *> byAddr;
    for (const Symbol &s : symbols)
        if (s.isFunc)
            byAddr[s.addr] = &s;

    std::ostringstream os;
    for (size_t i = 0; i < text.size(); ++i) {
        uint32_t addr = textBase + 4 * static_cast<uint32_t>(i);
        auto it = byAddr.find(addr);
        if (it != byAddr.end())
            os << "\n" << it->second->name << ":\n";
        isa::Instruction inst = isa::decode(text[i]);
        os << strfmt("  %06x:  %08x  %s\n", addr, text[i],
                     isa::disassemble(inst, addr).c_str());
    }
    return os.str();
}

} // namespace eel::exe
