#include "src/exe/executable.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "src/isa/instruction.hh"
#include "src/support/logging.hh"

namespace eel::exe {

namespace {

constexpr char magic[4] = {'X', 'E', 'F', '1'};

void
put32(std::ostream &os, uint32_t v)
{
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16),
                 static_cast<char>(v >> 24)};
    os.write(b, 4);
}

uint32_t
get32(std::istream &is)
{
    unsigned char b[4] = {0, 0, 0, 0};
    is.read(reinterpret_cast<char *>(b), 4);
    return b[0] | (b[1] << 8) | (b[2] << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
}

void
putStr(std::ostream &os, const std::string &s)
{
    put32(os, static_cast<uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getStr(std::istream &is)
{
    uint32_t n = get32(is);
    if (!is || n > (1u << 20))
        fatal("xef: corrupt string length %u", n);
    std::string s(n, '\0');
    is.read(s.data(), n);
    return s;
}

} // namespace

const Symbol *
Executable::findSymbol(const std::string &name) const
{
    for (const Symbol &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

Symbol *
Executable::findSymbol(const std::string &name)
{
    for (Symbol &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

uint32_t
Executable::addBss(const std::string &sym_name, uint32_t bytes)
{
    bssBytes = (bssBytes + 7) & ~7u;
    uint32_t addr = bssBase() + bssBytes;
    bssBytes += bytes;
    symbols.push_back(Symbol{sym_name, addr, bytes, false});
    return addr;
}

namespace {

/** Container writer shared by save() and saveBytes(). */
void
writeContainer(std::ostream &os, const Executable &x)
{
    os.write(magic, 4);
    put32(os, x.entry);
    put32(os, static_cast<uint32_t>(x.text.size()));
    for (uint32_t w : x.text)
        put32(os, w);
    put32(os, static_cast<uint32_t>(x.data.size()));
    {
        std::vector<uint8_t> flat = x.data.flat();
        os.write(reinterpret_cast<const char *>(flat.data()),
                 static_cast<std::streamsize>(flat.size()));
    }
    put32(os, x.bssBytes);
    put32(os, static_cast<uint32_t>(x.symbols.size()));
    for (const Symbol &s : x.symbols) {
        putStr(os, s.name);
        put32(os, s.addr);
        put32(os, s.size);
        put32(os, s.isFunc ? 1 : 0);
    }
}

/** Container reader shared by load() and loadBytes(). `origin` names
 *  the source (a path, a connection) in rejection messages. */
Executable
readContainer(std::istream &is, const std::string &origin)
{
    char m[4];
    is.read(m, 4);
    if (!is || std::memcmp(m, magic, 4) != 0)
        fatal("xef: '%s' is not an XEF image", origin.c_str());
    Executable x;
    x.entry = get32(is);
    uint32_t nwords = get32(is);
    if (!is || nwords > (textLimit - textBase) / 4)
        fatal("xef: '%s': text too large or truncated header",
              origin.c_str());
    x.text.reserve(nwords);
    for (uint32_t i = 0; i < nwords; ++i)
        x.text.push_back(get32(is));
    if (!is)
        fatal("xef: '%s': truncated text section", origin.c_str());
    uint32_t nd = get32(is);
    // Bound counts by what the remaining stream could actually hold
    // before allocating, so a corrupt header can't drive a huge
    // resize or a silent short read.
    if (!is || nd > (1u << 26))
        fatal("xef: '%s': corrupt data size %u", origin.c_str(), nd);
    {
        std::vector<uint8_t> flat(nd);
        is.read(reinterpret_cast<char *>(flat.data()), nd);
        if (!is || static_cast<uint32_t>(is.gcount()) != nd)
            fatal("xef: '%s': truncated data section", origin.c_str());
        x.data.append(flat.data(), flat.size());
    }
    x.bssBytes = get32(is);
    uint32_t ns = get32(is);
    if (!is || ns > (1u << 20))
        fatal("xef: '%s': corrupt symbol count %u", origin.c_str(),
              ns);
    for (uint32_t i = 0; i < ns; ++i) {
        Symbol s;
        s.name = getStr(is);
        s.addr = get32(is);
        s.size = get32(is);
        s.isFunc = get32(is) != 0;
        if (!is)
            fatal("xef: '%s': truncated symbol table",
                  origin.c_str());
        x.symbols.push_back(std::move(s));
    }
    if (!is)
        fatal("xef: '%s' truncated", origin.c_str());
    x.validate(origin);
    return x;
}

} // namespace

void
Executable::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("xef: cannot write '%s'", path.c_str());
    writeContainer(os, *this);
    if (!os)
        fatal("xef: write to '%s' failed", path.c_str());
}

Executable
Executable::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("xef: cannot read '%s'", path.c_str());
    return readContainer(is, path);
}

std::string
Executable::saveBytes() const
{
    std::ostringstream os(std::ios::binary);
    writeContainer(os, *this);
    return std::move(os).str();
}

Executable
Executable::loadBytes(const std::string &bytes,
                      const std::string &origin)
{
    std::istringstream is(bytes, std::ios::binary);
    return readContainer(is, origin);
}

void
Executable::validate(const std::string &origin) const
{
    if (textEnd() > textLimit)
        fatal("xef: '%s': text overruns layout window (%u words)",
              origin.c_str(), static_cast<uint32_t>(text.size()));
    if (!text.empty() && !inText(entry))
        fatal("xef: '%s': entry %#x outside text [%#x,%#x)",
              origin.c_str(), entry, textBase, textEnd());
    // bssEnd() computes in 32 bits; catch data+bss wrapping past 4 GiB.
    uint64_t end64 = uint64_t(bssBase()) + bssBytes;
    if (end64 > (uint64_t(1) << 32))
        fatal("xef: '%s': data+bss overflow address space",
              origin.c_str());
    for (const Symbol &s : symbols) {
        if (s.isFunc) {
            if (!inText(s.addr) ||
                uint64_t(s.addr) + s.size > textEnd())
                fatal("xef: '%s': function symbol '%s' at %#x (+%u) "
                      "outside text [%#x,%#x)",
                      origin.c_str(), s.name.c_str(), s.addr, s.size,
                      textBase, textEnd());
        } else {
            if (s.addr < dataBase ||
                uint64_t(s.addr) + s.size > bssEnd())
                fatal("xef: '%s': data symbol '%s' at %#x (+%u) "
                      "outside data+bss [%#x,%#x)",
                      origin.c_str(), s.name.c_str(), s.addr, s.size,
                      dataBase, bssEnd());
            // A symbol lives in data or in bss, never straddling the
            // boundary — a straddler means the sections overlap.
            if (s.addr < dataEnd() &&
                uint64_t(s.addr) + s.size > dataEnd())
                fatal("xef: '%s': symbol '%s' at %#x (+%u) overlaps "
                      "data/bss boundary %#x",
                      origin.c_str(), s.name.c_str(), s.addr, s.size,
                      dataEnd());
        }
    }
}

std::string
Executable::disassembleText() const
{
    std::map<uint32_t, const Symbol *> byAddr;
    for (const Symbol &s : symbols)
        if (s.isFunc)
            byAddr[s.addr] = &s;

    std::ostringstream os;
    for (size_t i = 0; i < text.size(); ++i) {
        uint32_t addr = textBase + 4 * static_cast<uint32_t>(i);
        auto it = byAddr.find(addr);
        if (it != byAddr.end())
            os << "\n" << it->second->name << ":\n";
        isa::Instruction inst = isa::decode(text[i]);
        os << strfmt("  %06x:  %08x  %s\n", addr, text[i],
                     isa::disassemble(inst, addr).c_str());
    }
    return os.str();
}

} // namespace eel::exe
