#include "src/exe/section_store.hh"

#include <unordered_map>

#include "src/exe/executable.hh"
#include "src/obs/metrics.hh"

namespace eel::exe {

uint64_t
pageContentHash(const Chunk &c)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : c.mem) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

ChunkPtr
SectionStore::intern(ChunkPtr c)
{
    static obs::Metric mCalls("store.intern_calls",
                              obs::MetricKind::Counter);
    static obs::Metric mHits("store.intern_hits",
                             obs::MetricKind::Counter);
    mCalls.add();
    uint64_t h = pageContentHash(*c);
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
    if (gcWatermark && tableEntries >= gcWatermark)
        gcLocked();
    auto &bucket = table[h];
    for (size_t i = 0; i < bucket.size();) {
        ChunkPtr cand = bucket[i].lock();
        if (!cand) {
            // Last image dropped this page; compact the bucket.
            bucket[i] = bucket.back();
            bucket.pop_back();
            --tableEntries;
            continue;
        }
        if (cand == c ||
            std::memcmp(cand->mem.data(), c->mem.data(),
                        Chunk::bytes) == 0) {
            ++hits;
            mHits.add();
            return cand;
        }
        ++i;
    }
    bucket.push_back(c);
    ++tableEntries;
    return c;
}

void
SectionStore::intern(Executable &x)
{
    intern(x.text);
    intern(x.data);
}

SectionStore::InternCounts
SectionStore::internCounted(Executable &x)
{
    InternCounts c;
    c.pages = x.text.chunkRefs().size() + x.data.chunkRefs().size();
    c.hits = x.text.internInto(*this) + x.data.internInto(*this);
    return c;
}

size_t
SectionStore::gcLocked()
{
    static obs::Metric mReclaimed("store.gc_reclaimed_pages",
                                  obs::MetricKind::Counter);
    size_t reclaimed = 0;
    for (auto it = table.begin(); it != table.end();) {
        auto &bucket = it->second;
        for (size_t i = 0; i < bucket.size();) {
            if (bucket[i].expired()) {
                bucket[i] = bucket.back();
                bucket.pop_back();
                --tableEntries;
                ++reclaimed;
            } else {
                ++i;
            }
        }
        if (bucket.empty())
            it = table.erase(it);
        else
            ++it;
    }
    for (auto it = views.begin(); it != views.end();)
        if (it->second.expired())
            it = views.erase(it);
        else
            ++it;
    for (auto it = hashes.begin(); it != hashes.end();)
        if (it->second.first.expired())
            it = hashes.erase(it);
        else
            ++it;
    ++gcRuns;
    gcReclaimed += reclaimed;
    mReclaimed.add(reclaimed);
    return reclaimed;
}

size_t
SectionStore::gc()
{
    std::lock_guard<std::mutex> lock(mu);
    return gcLocked();
}

void
SectionStore::setGcWatermark(size_t entries)
{
    std::lock_guard<std::mutex> lock(mu);
    gcWatermark = entries;
}

SectionStore::Stats
SectionStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s;
    s.internCalls = calls;
    s.internHits = hits;
    for (const auto &[h, bucket] : table)
        for (const auto &w : bucket)
            if (!w.expired())
                ++s.liveChunks;
    s.liveBytes = s.liveChunks * Chunk::bytes;
    s.tableEntries = tableEntries;
    s.viewEntries = views.size();
    s.hashEntries = hashes.size();
    s.gcRuns = gcRuns;
    s.gcReclaimedPages = gcReclaimed;
    return s;
}

uint64_t
SectionStore::contentHash(const ChunkPtr &c)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = hashes.find(c.get());
        // A live witness means the address still names the chunk it
        // was hashed as (two live shared_ptrs to one address are the
        // same object). An expired witness means the original page
        // died and the allocator recycled its address — the cached
        // hash describes the dead page's bytes, so fall through and
        // re-hash.
        if (it != hashes.end() && !it->second.first.expired())
            return it->second.second;
    }
    uint64_t h = pageContentHash(*c);
    std::lock_guard<std::mutex> lock(mu);
    hashes[c.get()] = {std::weak_ptr<const Chunk>(c), h};
    return h;
}

std::shared_ptr<void>
SectionStore::cachedView(
    const std::vector<ChunkPtr> &chunks,
    const std::function<std::shared_ptr<void>()> &make)
{
    std::vector<const Chunk *> key;
    key.reserve(chunks.size());
    for (const ChunkPtr &c : chunks)
        key.push_back(c.get());
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = views.find(key);
        if (it != views.end())
            if (std::shared_ptr<void> v = it->second.lock())
                return v;
    }
    // Build outside the lock (decoding can be slow); a racing build
    // of the same view is wasted work, not a correctness problem.
    std::shared_ptr<void> v = make();
    std::lock_guard<std::mutex> lock(mu);
    views[std::move(key)] = v;
    return v;
}

namespace {

ShareStats
refStats(const std::vector<std::vector<const std::vector<ChunkPtr> *>>
             &perImage,
         size_t flat_bytes)
{
    ShareStats s;
    s.images = perImage.size();
    s.flatBytes = flat_bytes;
    std::unordered_map<const Chunk *, size_t> uses;
    for (const auto &sections : perImage)
        for (const auto *refs : sections)
            for (const ChunkPtr &c : *refs) {
                ++uses[c.get()];
                ++s.totalRefs;
            }
    s.uniqueChunks = uses.size();
    s.storedBytes = s.uniqueChunks * Chunk::bytes;
    for (const auto &sections : perImage)
        for (const auto *refs : sections)
            for (const ChunkPtr &c : *refs)
                if (uses[c.get()] > 1)
                    ++s.sharedRefs;
    return s;
}

enum class Pick { Text, Data, Both };

ShareStats
pickStats(const std::vector<const Executable *> &images, Pick pick)
{
    std::vector<std::vector<const std::vector<ChunkPtr> *>> per;
    size_t flat = 0;
    for (const Executable *x : images) {
        std::vector<const std::vector<ChunkPtr> *> sections;
        if (pick != Pick::Data) {
            sections.push_back(&x->text.chunkRefs());
            flat += x->text.byteSize();
        }
        if (pick != Pick::Text) {
            sections.push_back(&x->data.chunkRefs());
            flat += x->data.byteSize();
        }
        per.push_back(std::move(sections));
    }
    return refStats(per, flat);
}

} // namespace

ShareStats
shareStats(const std::vector<const Executable *> &images)
{
    return pickStats(images, Pick::Both);
}

ShareStats
textShareStats(const std::vector<const Executable *> &images)
{
    return pickStats(images, Pick::Text);
}

ShareStats
dataShareStats(const std::vector<const Executable *> &images)
{
    return pickStats(images, Pick::Data);
}

} // namespace eel::exe
