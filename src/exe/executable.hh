/**
 * @file
 * XEF — the synthetic executable format the toolchain edits.
 *
 * A fully linked SPARC V8 program image: a text section of 32-bit
 * instruction words, an initialized data section, a zero-initialized
 * bss region, a symbol table naming routine entry points, and the
 * entry address. Like the binaries EEL edits, an XEF carries no
 * relocation information — the editor re-derives control flow from
 * the instructions themselves.
 *
 * Layout convention: text begins at 0x10000 and may grow to
 * 0x400000, where data begins; bss follows data. Keeping data fixed
 * while text grows lets instrumented code keep absolute data
 * addresses (sethi/or pairs) unchanged.
 */

#ifndef EEL_EXE_EXECUTABLE_HH
#define EEL_EXE_EXECUTABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/exe/section_store.hh"

namespace eel::exe {

constexpr uint32_t textBase = 0x10000;
constexpr uint32_t textLimit = 0x400000;
constexpr uint32_t dataBase = 0x400000;

struct Symbol
{
    std::string name;
    uint32_t addr = 0;
    uint32_t size = 0;     ///< bytes (functions: text bytes)
    bool isFunc = false;
};

class Executable
{
  public:
    /// Instruction words, at textBase + 4*i. Copying an Executable
    /// copies page references; see section_store.hh.
    TextSection text;
    /// Initialized data bytes, at dataBase.
    DataSection data;
    /// Zero-initialized region following data.
    uint32_t bssBytes = 0;
    uint32_t entry = textBase;
    std::vector<Symbol> symbols;

    uint32_t textEnd() const
    {
        return textBase + 4 * static_cast<uint32_t>(text.size());
    }
    uint32_t dataEnd() const
    {
        return dataBase + static_cast<uint32_t>(data.size());
    }
    uint32_t bssBase() const { return (dataEnd() + 7) & ~7u; }
    uint32_t bssEnd() const { return bssBase() + bssBytes; }

    bool
    inText(uint32_t addr) const
    {
        return addr >= textBase && addr < textEnd() &&
               (addr & 3) == 0;
    }
    uint32_t
    textIndex(uint32_t addr) const
    {
        return (addr - textBase) / 4;
    }
    uint32_t word(uint32_t addr) const { return text[textIndex(addr)]; }

    /** Find a symbol by name; nullptr if absent. */
    const Symbol *findSymbol(const std::string &name) const;
    Symbol *findSymbol(const std::string &name);

    /**
     * Reserve bytes of zero-initialized storage (alignment 8) and
     * return its address, registering a data symbol for it.
     */
    uint32_t addBss(const std::string &sym_name, uint32_t bytes);

    /** Serialize to / from the on-disk XEF container. */
    void save(const std::string &path) const;
    static Executable load(const std::string &path);

    /**
     * The same container to / from an in-memory byte string, for
     * callers that move images over a wire instead of a filesystem
     * (the rewriting service's SUBMIT_XEF payload). loadBytes runs
     * the same truncation/bounds checks and validate() pass as
     * load(), so a malformed payload is rejected with FatalError
     * rather than handed to the editor or emulator.
     */
    std::string saveBytes() const;
    static Executable loadBytes(const std::string &bytes,
                                const std::string &origin = "payload");

    /**
     * Structural sanity checks on an image: text within the layout
     * window, entry inside text, symbols inside their sections, no
     * data/bss overflow. fatal()s with a description on violation;
     * load() runs this so a malformed container is rejected rather
     * than handed to the editor or emulator.
     */
    void validate(const std::string &origin = "image") const;

    /** Full textual disassembly (addresses, symbols, instructions). */
    std::string disassembleText() const;
};

} // namespace eel::exe

#endif // EEL_EXE_EXECUTABLE_HH
