/**
 * @file
 * Copy-on-write section storage for XEF images.
 *
 * An executable's text and data sections are held as sequences of
 * immutable, refcounted pages (Chunk). Copying an Executable copies
 * page references, not page contents, so a rewriting pipeline that
 * stamps out many variants of one binary — instrumented, scheduled,
 * superblock-formed — keeps exactly one copy of every page the edit
 * did not touch (ATOM and Valgrind's translation cache share program
 * state across instrumented variants the same way). Mutation goes
 * through CowSection, which clones only the affected page and only
 * when it is shared.
 *
 * SectionStore adds content-addressed interning on top: two pages
 * with identical bytes — e.g. the text of an identity rewrite and
 * its original — collapse to one canonical chunk, so sharing is
 * visible as pointer identity and measurable (ShareStats). The store
 * also memoizes derived per-image views (the emulator's decoded
 * text) keyed by the exact chunk sequence, so repeated requests
 * against the same image reuse the decode instead of redoing and
 * re-storing it.
 */

#ifndef EEL_EXE_SECTION_STORE_HH
#define EEL_EXE_SECTION_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace eel::exe {

class Executable;
class SectionStore;

/**
 * One immutable page of section content. Pages are fixed-size and
 * zero-padded past the owning section's end, so content equality is
 * a plain memcmp of the whole page. 1 KiB pages suit this synthetic
 * format's KB-scale images; a real ELF store would use the MMU page.
 */
struct Chunk
{
    static constexpr uint32_t bytes = 1024;
    alignas(8) std::array<uint8_t, bytes> mem = {};
};

using ChunkPtr = std::shared_ptr<const Chunk>;

/** FNV-1a over a whole page. This is the content identity the
 *  store's intern index and the simulation result cache key on;
 *  buckets/keys are verified against actual bytes, so the hash only
 *  has to spread, never to prove equality. */
uint64_t pageContentHash(const Chunk &c);

/**
 * A section as a copy-on-write sequence of chunks, with enough of
 * std::vector's interface that Executable's text/data members keep
 * their call sites. Reads are value-returning (operator[] and the
 * const iterator yield T, not T&); writes go through set()/resize()
 * etc., which clone a shared chunk before touching it. Unused tail
 * bytes of the last chunk are kept zero so equal content always
 * means equal page bytes.
 */
template <class T>
class CowSection
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    static constexpr size_t perChunk = Chunk::bytes / sizeof(T);

    CowSection() = default;
    CowSection(std::initializer_list<T> init) { *this = init; }
    CowSection &
    operator=(std::initializer_list<T> init)
    {
        clear();
        append(init.begin(), init.size());
        return *this;
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    T
    operator[](size_t i) const
    {
        T v;
        std::memcpy(&v, slot(i), sizeof(T));
        return v;
    }

    /** COW write of element i (the chunked analogue of s[i] = v). */
    void
    set(size_t i, T v)
    {
        std::memcpy(mutableChunk(i / perChunk)->mem.data() +
                        (i % perChunk) * sizeof(T),
                    &v, sizeof(T));
    }

    void
    push_back(T v)
    {
        size_t i = count;
        if (i / perChunk == chunks.size())
            chunks.push_back(std::make_shared<Chunk>());
        ++count;
        set(i, v);
    }

    /** Chunks allocate on demand; reserve is a compatibility no-op. */
    void reserve(size_t) {}

    void
    clear()
    {
        chunks.clear();
        count = 0;
    }

    void
    resize(size_t n, T fill = T())
    {
        if (n < count) {
            // Re-zero the abandoned tail of the surviving last chunk
            // so the zero-pad invariant (and page-level dedup) holds.
            size_t keep_chunks = (n + perChunk - 1) / perChunk;
            if (keep_chunks && n % perChunk != 0) {
                Chunk *c = mutableChunk(keep_chunks - 1);
                size_t used = n % perChunk;
                std::memset(c->mem.data() + used * sizeof(T), 0,
                            (perChunk - used) * sizeof(T));
            }
            chunks.resize(keep_chunks);
            count = n;
            return;
        }
        while (count < n)
            push_back(fill);
    }

    void
    assign(size_t n, T fill)
    {
        clear();
        resize(n, fill);
    }

    void
    append(const T *src, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            push_back(src[i]);
    }

    /** Copy the whole section out to contiguous storage. */
    void
    copyTo(T *dst) const
    {
        size_t left = count;
        for (size_t ci = 0; left > 0; ++ci) {
            size_t n = left < perChunk ? left : perChunk;
            std::memcpy(dst + ci * perChunk, chunks[ci]->mem.data(),
                        n * sizeof(T));
            left -= n;
        }
    }

    std::vector<T>
    flat() const
    {
        std::vector<T> out(count);
        copyTo(out.data());
        return out;
    }

    bool
    operator==(const CowSection &o) const
    {
        if (count != o.count)
            return false;
        for (size_t ci = 0; ci < chunks.size(); ++ci) {
            if (chunks[ci] == o.chunks[ci])
                continue;  // shared page: equal by identity
            if (std::memcmp(chunks[ci]->mem.data(),
                            o.chunks[ci]->mem.data(),
                            Chunk::bytes) != 0)
                return false;
        }
        return true;
    }

    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = T;

        const_iterator() = default;
        const_iterator(const CowSection *s, size_t i) : s(s), i(i) {}
        T operator*() const { return (*s)[i]; }
        const_iterator &
        operator++()
        {
            ++i;
            return *this;
        }
        const_iterator
        operator++(int)
        {
            const_iterator t = *this;
            ++i;
            return t;
        }
        bool operator==(const const_iterator &) const = default;

      private:
        const CowSection *s = nullptr;
        size_t i = 0;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

    /** The underlying page references (sharing is pointer identity). */
    const std::vector<ChunkPtr> &chunkRefs() const { return chunks; }

    /** Bytes of content (not counting page-tail padding). */
    size_t byteSize() const { return count * sizeof(T); }

    /** Replace every page with its canonical store chunk. Returns
     *  how many pages resolved to an existing canonical chunk (the
     *  per-image hit count a cache server reports per request). */
    size_t internInto(SectionStore &store);

  private:
    const uint8_t *
    slot(size_t i) const
    {
        return chunks[i / perChunk]->mem.data() +
               (i % perChunk) * sizeof(T);
    }

    /**
     * Chunk ci, cloned first if any other section (or the run cursor
     * of a sibling image) still references it. A uniquely owned
     * chunk is edited in place: the store only holds weak references,
     * so interned-but-unshared pages stay cheap to mutate.
     */
    Chunk *
    mutableChunk(size_t ci)
    {
        if (chunks[ci].use_count() != 1)
            chunks[ci] = std::make_shared<Chunk>(*chunks[ci]);
        // The only strong owner is this section; editing in place is
        // invisible to everyone else.
        return const_cast<Chunk *>(chunks[ci].get());
    }

    std::vector<ChunkPtr> chunks;
    size_t count = 0;
};

using TextSection = CowSection<uint32_t>;
using DataSection = CowSection<uint8_t>;

/**
 * Content-addressed chunk table. intern() maps a page to its
 * canonical refcounted chunk, adopting the caller's page when the
 * content is new. The table holds weak references only — pages die
 * with the last image that uses them, and use_count() stays an exact
 * image-reference count (which the aliasing tests assert on).
 * Thread-safe: batch rewriting interns from pool workers.
 */
class SectionStore
{
  public:
    struct Stats
    {
        size_t internCalls = 0;   ///< pages offered to intern()
        size_t internHits = 0;    ///< resolved to an existing page
        size_t liveChunks = 0;    ///< distinct pages currently alive
        size_t liveBytes = 0;     ///< liveChunks * Chunk::bytes
        size_t tableEntries = 0;  ///< index entries, dead ones included
        size_t viewEntries = 0;   ///< memoized derived views held
        size_t hashEntries = 0;   ///< memoized content hashes held
        size_t gcRuns = 0;
        size_t gcReclaimedPages = 0;  ///< dead index entries swept
    };

    /** Canonical chunk for this content (maybe `c` itself). */
    ChunkPtr intern(ChunkPtr c);

    /** Intern every page of a section (and of an executable). */
    template <class T>
    void
    intern(CowSection<T> &s)
    {
        s.internInto(*this);
    }
    void intern(Executable &x);

    /** Per-image interning accounting: pages offered and pages that
     *  resolved to an already-canonical chunk. This is what a cache
     *  server reports back per SUBMIT — a resubmitted or lightly
     *  edited image hits on (nearly) every page. */
    struct InternCounts
    {
        size_t pages = 0;
        size_t hits = 0;
    };
    InternCounts internCounted(Executable &x);

    /**
     * Sweep the index: drop table entries whose page died with its
     * last image, and memoized views whose owner died. The table
     * holds weak references, so the pages themselves are freed the
     * moment the last image drops them — what grows without gc is
     * the *index* (hash buckets full of expired entries, view keys),
     * which in a long-lived daemon that interns every submitted
     * image is an unbounded leak. Returns reclaimed page entries and
     * feeds the "store.gc_reclaimed_pages" metric.
     */
    size_t gc();

    /**
     * Auto-gc trigger: once the index holds this many page entries,
     * the next intern() sweeps inline (0 = manual gc() only, the
     * default — batch pipelines die before the index matters). A
     * daemon sets this to bound its index by live working set.
     */
    void setGcWatermark(size_t entries);

    Stats stats() const;

    /**
     * Content hash of a page (pageContentHash), memoized by chunk
     * identity. The memo holds a weak reference next to each cached
     * hash and re-hashes whenever that reference has expired: a
     * chunk address the allocator recycled after gc() reclaimed the
     * original page therefore never serves the dead page's hash to a
     * live cache key (re-hash-on-miss, not pinning — the store must
     * not keep result-cache pages alive). Expired memo entries are
     * swept by gc() like the intern index.
     */
    uint64_t contentHash(const ChunkPtr &c);

    /**
     * Memoized derived view of a chunk sequence (e.g. the decoded
     * text the emulator runs from). Keyed by the exact page pointers,
     * so images that share all their text pages share the view; held
     * weakly, so views die with their last user.
     */
    std::shared_ptr<void>
    cachedView(const std::vector<ChunkPtr> &chunks,
               const std::function<std::shared_ptr<void>()> &make);

  private:
    /** Sweep with mu already held; intern()'s watermark path. */
    size_t gcLocked();

    mutable std::mutex mu;
    // hash(content) -> candidate pages with that hash.
    std::unordered_map<uint64_t, std::vector<std::weak_ptr<const Chunk>>>
        table;
    std::map<std::vector<const Chunk *>, std::weak_ptr<void>> views;
    // chunk address -> (liveness witness, content hash); see
    // contentHash() for the recycled-address hazard this guards.
    std::unordered_map<const Chunk *,
                       std::pair<std::weak_ptr<const Chunk>, uint64_t>>
        hashes;
    size_t calls = 0, hits = 0;
    size_t tableEntries = 0;  ///< sum of bucket sizes (dead included)
    size_t gcWatermark = 0;
    size_t gcRuns = 0, gcReclaimed = 0;
};

template <class T>
size_t
CowSection<T>::internInto(SectionStore &store)
{
    size_t resolved = 0;
    for (ChunkPtr &c : chunks) {
        const Chunk *offered = c.get();
        c = store.intern(std::move(c));
        resolved += c.get() != offered;
    }
    return resolved;
}

/**
 * Cross-image sharing statistics, by page-pointer identity: how many
 * of the images' page references resolve to a page some other
 * reference also uses, and how much memory the set occupies versus
 * what flat (eager-copy) images would.
 */
struct ShareStats
{
    size_t images = 0;
    size_t totalRefs = 0;    ///< page references across all images
    size_t sharedRefs = 0;   ///< references to multiply-used pages
    size_t uniqueChunks = 0; ///< distinct pages backing the set
    size_t flatBytes = 0;    ///< sum of per-image content bytes
    size_t storedBytes = 0;  ///< uniqueChunks * Chunk::bytes

    double
    sharedFrac() const
    {
        return totalRefs ? double(sharedRefs) / double(totalRefs)
                         : 0.0;
    }
    double
    reduction() const
    {
        return storedBytes ? double(flatBytes) / double(storedBytes)
                           : 0.0;
    }
};

/** Sharing over whole images (text + data sections). */
ShareStats shareStats(const std::vector<const Executable *> &images);
/** Sharing over the text sections only. */
ShareStats textShareStats(const std::vector<const Executable *> &images);
/** Sharing over the data sections only. */
ShareStats dataShareStats(const std::vector<const Executable *> &images);

} // namespace eel::exe

#endif // EEL_EXE_SECTION_STORE_HH
