/**
 * @file
 * Abstract syntax for SADL expressions and declarations.
 */

#ifndef EEL_SADL_AST_HH
#define EEL_SADL_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace eel::sadl {

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
    Name,       ///< identifier or operator-identifier reference
    Number,     ///< integer literal
    Immediate,  ///< #field — an instruction immediate
    UnitVal,    ///< the () value
    List,       ///< [ e1 e2 ... ] — elements are forced lazily
    Lambda,     ///< \x. body
    Apply,      ///< f arg (curried application)
    Seq,        ///< e1, e2, ..., en — value of the last element
    Assign,     ///< lhs := rhs (register write or local binding)
    CondExpr,   ///< p ? a : b
    EqTest,     ///< a = b
    Zip,        ///< fs @ xs — pointwise application of lists
    Index,      ///< base [ idx ] — register file / alias indexing
    CmdA,       ///< A unit [num]
    CmdR,       ///< R unit [num]
    CmdAR,      ///< AR unit [num [delay]]
    CmdD,       ///< D [delay]
};

/** One SADL expression node. Children are in kids; leaves use fields. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    std::string name;          ///< Name/Immediate/Lambda param/Cmd unit
    long number = 0;           ///< Number value / Cmd num
    long number2 = 1;          ///< CmdAR delay
    bool hasNumber = false;    ///< Cmd num present
    std::vector<ExprP> kids;   ///< subexpressions (see kind)
};

enum class DeclKind : uint8_t { Unit, Val, Alias, Register, Sem };

/** A top-level SADL declaration. */
struct Decl
{
    DeclKind kind;
    int line = 0;

    /// Unit: pairs of (name, count) flattened into names/counts.
    std::vector<std::string> names;
    std::vector<long> counts;

    /// Val/Sem: bound names are in names; body below.
    /// Alias: names[0] is the alias name, param the index variable.
    std::string param;
    long typeBits = 0;   ///< alias/register element width in bits
    long arraySize = 0;  ///< register file size
    ExprP body;
};

/** A parsed SADL description. */
struct Program
{
    std::vector<Decl> decls;
};

} // namespace eel::sadl

#endif // EEL_SADL_AST_HH
