#include "src/sadl/lexer.hh"

#include <cctype>
#include <map>

#include "src/support/logging.hh"

namespace eel::sadl {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isOpChar(char c)
{
    return c == '+' || c == '-' || c == '&' || c == '|' || c == '^' ||
           c == '<' || c == '>' || c == '*' || c == '/' || c == '~' ||
           c == '!';
}

const std::map<std::string, Tok, std::less<>> keywords = {
    {"unit", Tok::KwUnit},   {"val", Tok::KwVal},
    {"alias", Tok::KwAlias}, {"register", Tok::KwRegister},
    {"sem", Tok::KwSem},     {"is", Tok::KwIs},
    // A, R, AR, and D are contextual: the parser recognizes them as
    // timing commands when followed by a unit name (or a delay count
    // for D); otherwise they are ordinary identifiers. The paper's
    // own descriptions use "R" both as the release command and as the
    // integer register file.
};

} // namespace

std::string
tokenName(const Token &t)
{
    switch (t.kind) {
      case Tok::End: return "<end of input>";
      case Tok::Ident: return "identifier '" + t.text + "'";
      case Tok::OpIdent: return "operator '" + t.text + "'";
      case Tok::Number: return "number " + std::to_string(t.value);
      case Tok::Immediate: return "immediate '#" + t.text + "'";
      case Tok::KwUnit: return "'unit'";
      case Tok::KwVal: return "'val'";
      case Tok::KwAlias: return "'alias'";
      case Tok::KwRegister: return "'register'";
      case Tok::KwSem: return "'sem'";
      case Tok::KwIs: return "'is'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::Comma: return "','";
      case Tok::Dot: return "'.'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
      case Tok::At: return "'@'";
      case Tok::Lambda: return "'\\'";
      case Tok::Assign: return "':='";
      case Tok::Equals: return "'='";
    }
    return "<unknown>";
}

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    const size_t n = source.size();

    auto push = [&](Tok kind, std::string text = {}, long value = 0) {
        out.push_back(Token{kind, std::move(text), value, line});
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (isIdentStart(c)) {
            size_t b = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            std::string word = source.substr(b, i - b);
            auto it = keywords.find(word);
            if (it != keywords.end())
                push(it->second, word);
            else
                push(Tok::Ident, word);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t b = i;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i])))
                ++i;
            long v = std::stol(source.substr(b, i - b));
            push(Tok::Number, {}, v);
            continue;
        }
        if (c == '#') {
            ++i;
            size_t b = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            if (b == i)
                fatal("sadl: line %d: '#' must be followed by a field "
                      "name", line);
            push(Tok::Immediate, source.substr(b, i - b));
            continue;
        }
        if (c == ':' && i + 1 < n && source[i + 1] == '=') {
            push(Tok::Assign);
            i += 2;
            continue;
        }
        if (isOpChar(c)) {
            size_t b = i;
            while (i < n && isOpChar(source[i]))
                ++i;
            push(Tok::OpIdent, source.substr(b, i - b));
            continue;
        }
        switch (c) {
          case '(': push(Tok::LParen); break;
          case ')': push(Tok::RParen); break;
          case '[': push(Tok::LBracket); break;
          case ']': push(Tok::RBracket); break;
          case '{': push(Tok::LBrace); break;
          case '}': push(Tok::RBrace); break;
          case ',': push(Tok::Comma); break;
          case '.': push(Tok::Dot); break;
          case '?': push(Tok::Question); break;
          case ':': push(Tok::Colon); break;
          case '@': push(Tok::At); break;
          case '\\': push(Tok::Lambda); break;
          case '=': push(Tok::Equals); break;
          default:
            fatal("sadl: line %d: unexpected character '%c'", line, c);
        }
        ++i;
    }
    push(Tok::End);
    return out;
}

} // namespace eel::sadl
