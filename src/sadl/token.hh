/**
 * @file
 * Token definitions for SADL, the Spawn Architecture Description
 * Language (paper §3.1).
 */

#ifndef EEL_SADL_TOKEN_HH
#define EEL_SADL_TOKEN_HH

#include <cstdint>
#include <string>

namespace eel::sadl {

enum class Tok : uint8_t {
    End,
    Ident,      ///< names: add, R4r, multi (letters/digits/_)
    OpIdent,    ///< operator names: + - & | ^ << >>
    Number,     ///< decimal integer literal
    Immediate,  ///< #name — instruction immediate field reference

    // keywords (A/R/AR/D are contextual identifiers, not keywords;
    // see lexer.cc)
    KwUnit, KwVal, KwAlias, KwRegister, KwSem, KwIs,

    // punctuation
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Comma, Dot, Question, Colon, At, Lambda,
    Assign,     ///< :=
    Equals,     ///< =
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;     ///< identifier / operator spelling
    long value = 0;       ///< number value
    int line = 0;         ///< 1-based source line for diagnostics
};

/** Human-readable token description for error messages. */
std::string tokenName(const Token &t);

} // namespace eel::sadl

#endif // EEL_SADL_TOKEN_HH
