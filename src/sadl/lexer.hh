/**
 * @file
 * Lexer for SADL source text.
 */

#ifndef EEL_SADL_LEXER_HH
#define EEL_SADL_LEXER_HH

#include <string>
#include <vector>

#include "src/sadl/token.hh"

namespace eel::sadl {

/**
 * Tokenize SADL source. Comments run from "//" to end of line.
 * Throws FatalError on malformed input.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace eel::sadl

#endif // EEL_SADL_LEXER_HH
