/**
 * @file
 * The analysis output of the SADL front end: per-mnemonic pipeline
 * timing records. This is the information the paper's Spawn tool
 * extracts from a description (§3.1): how many cycles an instruction
 * occupies, which units it acquires and releases in each cycle, in
 * which cycle each register operand is read, and in which cycle each
 * result value becomes available to subsequent instructions.
 */

#ifndef EEL_SADL_TIMING_HH
#define EEL_SADL_TIMING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eel::sadl {

/** Encoding fields a description may reference. */
enum class Field : uint8_t {
    None, Rs1, Rs2, Rd, Iflag, CondF, Simm13, Imm22, Disp, Annul,
};

/** A processor resource declared with "unit". */
struct UnitDecl
{
    std::string name;
    unsigned count;
};

/** A register file declared with "register". */
struct RegFileDecl
{
    std::string name;
    unsigned bits;
    unsigned size;
};

/**
 * A variant guard: the variant applies when (field == value) has the
 * given truth value. Produced by conditionals over encoding fields,
 * e.g. "iflag=1 ? #simm13 : R4r[rs2]".
 */
struct VariantCond
{
    Field field;
    long value;
    bool mustEqual;

    bool operator==(const VariantCond &) const = default;
};

/** Acquire/release of n copies of a unit. */
struct UnitEvent
{
    uint16_t unit;  ///< index into Description::units
    uint16_t num;

    bool operator==(const UnitEvent &) const = default;
};

/** One register-file access with its pipeline timing. */
struct RegAccess
{
    uint16_t file;        ///< index into Description::regFiles
    Field field;          ///< which encoding field names the register
    uint16_t constIdx;    ///< used when field == Field::None
    bool pair;            ///< access also touches register index|1
    uint8_t cycle;        ///< pipeline cycle of the access
    /**
     * For writes: the cycle in which the result value was computed.
     * A dependent instruction may read the value in any strictly
     * later absolute cycle (forwarding; paper §3.1).
     */
    uint8_t valueReady;
    bool isWrite;

    bool operator==(const RegAccess &) const = default;
};

/** Complete timing for one instruction variant. */
struct Timing
{
    std::string mnemonic;
    std::vector<VariantCond> conds;
    unsigned latency = 1;  ///< cycles from issue through the pipeline

    /// acquire[c] / release[c]: unit events applied in cycle c.
    /// release has one extra slot (events at cycle == latency fire
    /// when the instruction leaves the pipeline).
    std::vector<std::vector<UnitEvent>> acquire;
    std::vector<std::vector<UnitEvent>> release;

    std::vector<RegAccess> reads;
    std::vector<RegAccess> writes;

    /// Group id: instructions with identical timing share a group,
    /// exactly as Spawn groups them to save space (§3.1). Filled in
    /// by analyze().
    unsigned group = 0;

    /** True if this variant's timing (ignoring name/conds) equals o. */
    bool sameShape(const Timing &o) const;
};

/** Everything Spawn extracts from one SADL description. */
struct Description
{
    std::vector<UnitDecl> units;
    std::vector<RegFileDecl> regFiles;
    std::vector<Timing> timings;
    unsigned numGroups = 0;

    int unitIndex(const std::string &name) const;
    int regFileIndex(const std::string &name) const;
};

/**
 * Run the Spawn front end: lex, parse, and symbolically evaluate a
 * SADL description, producing the timing records for every sem-bound
 * mnemonic (one per conditional variant). Throws FatalError on
 * malformed descriptions.
 */
Description analyze(const std::string &source);

/** Map a field name as written in descriptions ("rs1") to Field. */
Field fieldFromName(const std::string &name);
std::string fieldName(Field f);

} // namespace eel::sadl

#endif // EEL_SADL_TIMING_HH
