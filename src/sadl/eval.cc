/**
 * @file
 * Symbolic evaluator for SADL semantic expressions.
 *
 * A sem declaration binds a mnemonic to an expression over timing
 * commands (A/R/AR/D), register-file aliases, and computational
 * operators. Evaluating the expression symbolically — advancing a
 * cycle counter on D, recording unit acquire/release events, and
 * recording the cycle of every register read and the computation
 * cycle of every written value — yields exactly the information the
 * paper's Spawn tool passes to the instruction scheduler (§3.1).
 *
 * Conditionals over encoding fields (e.g. "iflag=1 ? ... : ...") fork
 * the evaluation: each sem mnemonic yields one Timing per reachable
 * combination of field-condition outcomes.
 */

#include "src/sadl/timing.hh"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "src/sadl/ast.hh"
#include "src/sadl/parser.hh"
#include "src/support/logging.hh"

namespace eel::sadl {

bool
Timing::sameShape(const Timing &o) const
{
    return latency == o.latency && acquire == o.acquire &&
           release == o.release && reads == o.reads &&
           writes == o.writes;
}

int
Description::unitIndex(const std::string &name) const
{
    for (size_t i = 0; i < units.size(); ++i)
        if (units[i].name == name)
            return static_cast<int>(i);
    return -1;
}

int
Description::regFileIndex(const std::string &name) const
{
    for (size_t i = 0; i < regFiles.size(); ++i)
        if (regFiles[i].name == name)
            return static_cast<int>(i);
    return -1;
}

Field
fieldFromName(const std::string &name)
{
    if (name == "rs1") return Field::Rs1;
    if (name == "rs2") return Field::Rs2;
    if (name == "rd") return Field::Rd;
    if (name == "iflag") return Field::Iflag;
    if (name == "cond") return Field::CondF;
    if (name == "annul") return Field::Annul;
    if (name == "simm13") return Field::Simm13;
    if (name == "imm22") return Field::Imm22;
    if (name == "disp" || name == "disp22" || name == "disp30")
        return Field::Disp;
    return Field::None;
}

std::string
fieldName(Field f)
{
    switch (f) {
      case Field::Rs1: return "rs1";
      case Field::Rs2: return "rs2";
      case Field::Rd: return "rd";
      case Field::Iflag: return "iflag";
      case Field::CondF: return "cond";
      case Field::Annul: return "annul";
      case Field::Simm13: return "simm13";
      case Field::Imm22: return "imm22";
      case Field::Disp: return "disp";
      default: return "none";
    }
}

namespace {

class Eval;

struct Value;
using ValueP = std::shared_ptr<const Value>;

/** Deferred computation: forced lazily, re-runs per force. */
using Thunk = std::function<ValueP(Eval &)>;

enum class VKind : uint8_t {
    UnitV, Num, Sym, BoolV, SymCond, FieldRef, Closure, Builtin,
    ListV, RegFile, AliasRef, RegRef,
};

struct Env;
using EnvP = std::shared_ptr<const Env>;

struct Env
{
    std::string name;
    Thunk thunk;
    EnvP parent;

    static const Thunk *
    lookup(const EnvP &env, const std::string &name)
    {
        for (const Env *e = env.get(); e; e = e->parent.get())
            if (e->name == name)
                return &e->thunk;
        return nullptr;
    }

    static EnvP
    bind(EnvP parent, std::string name, Thunk t)
    {
        auto e = std::make_shared<Env>();
        e->name = std::move(name);
        e->thunk = std::move(t);
        e->parent = std::move(parent);
        return e;
    }
};

struct Value
{
    VKind kind;

    long num = 0;            ///< Num
    int cycle = 0;           ///< Sym: cycle the value was computed in
    bool b = false;          ///< BoolV

    Field field = Field::None;  ///< FieldRef / SymCond / RegRef
    long cmpVal = 0;            ///< SymCond comparison constant

    // Closure
    std::string param;
    ExprP body;
    EnvP env;

    // Builtin
    std::string bname;
    int arity = 0;
    std::vector<ValueP> partial;

    // ListV
    std::vector<Thunk> elems;

    // RegFile / RegRef
    int fileIdx = -1;
    int constIdx = 0;     ///< RegRef index when field == None
    bool pair = false;    ///< RegRef: 64-bit access through 32-bit file

    // AliasRef
    const Decl *alias = nullptr;
    EnvP aliasEnv;
};

ValueP
mkv(VKind k)
{
    auto v = std::make_shared<Value>();
    v->kind = k;
    return v;
}

ValueP
mkNum(long n)
{
    auto v = std::make_shared<Value>();
    v->kind = VKind::Num;
    v->num = n;
    return v;
}

ValueP
mkSym(int cycle)
{
    auto v = std::make_shared<Value>();
    v->kind = VKind::Sym;
    v->cycle = cycle;
    return v;
}

const ValueP unitValue = mkv(VKind::UnitV);

/** Computational builtins: name -> arity. Timing-wise every builtin
 *  computes its result in the cycle where it becomes fully applied. */
const std::map<std::string, int, std::less<>> builtinOps = {
    {"add32", 2}, {"sub32", 2}, {"and32", 2}, {"or32", 2},
    {"xor32", 2}, {"sll32", 2}, {"srl32", 2}, {"sra32", 2},
    {"umul32", 2}, {"smul32", 2}, {"udiv32", 2}, {"sdiv32", 2},
    {"cmp32", 2},
    {"store8", 2}, {"store16", 2}, {"store32", 2}, {"store64", 2},
    {"fadd", 2}, {"fsub", 2}, {"fmul", 2}, {"fdiv", 2}, {"fcmp", 2},
    {"val32", 1},
    {"load8", 1}, {"load16", 1}, {"load32", 1}, {"load64", 1},
    {"fsqrt", 1}, {"fmov", 1}, {"fneg", 1}, {"fabs", 1}, {"cvt", 1},
    {"branch", 1}, {"trap", 1},
};

/**
 * One symbolic run of a sem body. Owns the timing side effects and
 * the fork decision tape.
 */
class Eval
{
  public:
    Eval(const Description &desc, const std::string &mnemonic,
         std::vector<bool> preset)
        : desc(desc), preset(std::move(preset))
    {
        timing.mnemonic = mnemonic;
    }

    const Description &desc;

    // Fork decision tape: preset decisions replayed first, further
    // decisions default to "taken" and are appended to tape.
    std::vector<bool> preset;
    std::vector<bool> tape;
    Timing timing;

    int cycle = 0;
    int maxEventCycle = 0;

    // Per-unit acquire/release balance for validation.
    std::map<int, long> balance;

    void
    note(int c)
    {
        maxEventCycle = std::max(maxEventCycle, c);
    }

    void
    acquire(int unit, int num, int at)
    {
        if (static_cast<size_t>(at) >= timing.acquire.size())
            timing.acquire.resize(at + 1);
        timing.acquire[at].push_back(
            UnitEvent{static_cast<uint16_t>(unit),
                      static_cast<uint16_t>(num)});
        balance[unit] += num;
        note(at);
    }

    void
    release(int unit, int num, int at)
    {
        if (static_cast<size_t>(at) >= timing.release.size())
            timing.release.resize(at + 1);
        timing.release[at].push_back(
            UnitEvent{static_cast<uint16_t>(unit),
                      static_cast<uint16_t>(num)});
        balance[unit] -= num;
        // A release does not extend the instruction's occupancy on
        // its own; clamped against latency at the end.
    }

    bool
    decide(Field f, long value)
    {
        size_t idx = tape.size();
        bool taken = idx < preset.size() ? preset[idx] : true;
        tape.push_back(taken);
        timing.conds.push_back(VariantCond{f, value, taken});
        return taken;
    }

    // --- expression evaluation ------------------------------------------

    ValueP
    eval(const ExprP &e, const EnvP &env)
    {
        return coerce(evalRef(e, env));
    }

    /** Turn a register reference into a recorded read. */
    ValueP
    coerce(ValueP v)
    {
        if (v->kind != VKind::RegRef)
            return v;
        RegAccess acc;
        acc.file = static_cast<uint16_t>(v->fileIdx);
        acc.field = v->field;
        acc.constIdx = static_cast<uint16_t>(v->constIdx);
        acc.pair = v->pair;
        acc.cycle = static_cast<uint8_t>(cycle);
        acc.valueReady = 0;
        acc.isWrite = false;
        timing.reads.push_back(acc);
        note(cycle);
        return mkSym(cycle);
    }

    ValueP
    evalRef(const ExprP &e, const EnvP &env)
    {
        switch (e->kind) {
          case ExprKind::Number:
            return mkNum(e->number);
          case ExprKind::UnitVal:
            return unitValue;
          case ExprKind::Immediate: {
            Field f = fieldFromName(e->name);
            if (f == Field::None)
                fatal("sadl: line %d: unknown immediate field '#%s'",
                      e->line, e->name.c_str());
            // Immediates are ready at issue; they behave as values
            // computed "before cycle 0".
            auto v = std::make_shared<Value>();
            v->kind = VKind::Sym;
            v->cycle = cycle > 0 ? cycle - 1 : 0;
            return v;
          }
          case ExprKind::Name:
            return evalName(e, env);
          case ExprKind::Lambda: {
            auto v = std::make_shared<Value>();
            v->kind = VKind::Closure;
            v->param = e->name;
            v->body = e->kids[0];
            v->env = env;
            return v;
          }
          case ExprKind::List: {
            auto v = std::make_shared<Value>();
            v->kind = VKind::ListV;
            for (const ExprP &kid : e->kids) {
                EnvP captured = env;
                v->elems.push_back([kid, captured](Eval &ev) {
                    return ev.evalRef(kid, captured);
                });
            }
            return v;
          }
          case ExprKind::Apply: {
            ValueP f = eval(e->kids[0], env);
            ValueP arg = eval(e->kids[1], env);
            return apply(f, arg, e->line);
          }
          case ExprKind::Seq:
            return evalSeq(e, env);
          case ExprKind::Assign:
            return evalAssign(e, env, nullptr);
          case ExprKind::CondExpr: {
            ValueP test = eval(e->kids[0], env);
            bool taken;
            if (test->kind == VKind::BoolV) {
                taken = test->b;
            } else if (test->kind == VKind::SymCond) {
                taken = decide(test->field, test->cmpVal);
            } else {
                fatal("sadl: line %d: condition is not a boolean",
                      e->line);
            }
            return evalRef(e->kids[taken ? 1 : 2], env);
          }
          case ExprKind::EqTest: {
            ValueP a = eval(e->kids[0], env);
            ValueP b = eval(e->kids[1], env);
            if (a->kind == VKind::Num && b->kind == VKind::Num) {
                auto v = mkv(VKind::BoolV);
                const_cast<Value &>(*v).b = a->num == b->num;
                return v;
            }
            const Value *fld = nullptr;
            const Value *num = nullptr;
            if (a->kind == VKind::FieldRef && b->kind == VKind::Num) {
                fld = a.get();
                num = b.get();
            } else if (b->kind == VKind::FieldRef &&
                       a->kind == VKind::Num) {
                fld = b.get();
                num = a.get();
            } else {
                fatal("sadl: line %d: '=' needs a field and a "
                      "constant", e->line);
            }
            auto v = std::make_shared<Value>();
            v->kind = VKind::SymCond;
            v->field = fld->field;
            v->cmpVal = num->num;
            return v;
          }
          case ExprKind::Zip:
            return evalZip(e, env);
          case ExprKind::Index:
            return evalIndex(e, env);
          case ExprKind::CmdA:
          case ExprKind::CmdR:
          case ExprKind::CmdAR:
          case ExprKind::CmdD:
            return evalCmd(e);
        }
        panic("sadl eval: unhandled expression kind");
    }

    ValueP
    evalName(const ExprP &e, const EnvP &env)
    {
        if (const Thunk *t = Env::lookup(env, e->name))
            return (*t)(*this);

        Field f = fieldFromName(e->name);
        if (f != Field::None) {
            auto v = std::make_shared<Value>();
            v->kind = VKind::FieldRef;
            v->field = f;
            return v;
        }
        auto bi = builtinOps.find(e->name);
        if (bi != builtinOps.end()) {
            auto v = std::make_shared<Value>();
            v->kind = VKind::Builtin;
            v->bname = bi->first;
            v->arity = bi->second;
            return v;
        }
        fatal("sadl: line %d: unknown name '%s'", e->line,
              e->name.c_str());
    }

    ValueP
    apply(ValueP f, ValueP arg, int line)
    {
        arg = coerce(arg);
        switch (f->kind) {
          case VKind::Closure: {
            EnvP inner = Env::bind(
                f->env, f->param,
                [arg](Eval &) { return arg; });
            return evalRef(f->body, inner);
          }
          case VKind::Builtin: {
            auto v = std::make_shared<Value>(*f);
            v->partial.push_back(arg);
            if (static_cast<int>(v->partial.size()) < v->arity)
                return v;
            // Fully applied: the result is computed in this cycle.
            note(cycle);
            return mkSym(cycle);
          }
          default:
            fatal("sadl: line %d: value is not applicable", line);
        }
    }

    /**
     * Sequencing with local bindings: "x := e" in a non-final
     * position extends the environment for the rest of the sequence.
     */
    ValueP
    evalSeq(const ExprP &e, const EnvP &env)
    {
        EnvP cur = env;
        ValueP last = unitValue;
        for (size_t i = 0; i < e->kids.size(); ++i) {
            const ExprP &elem = e->kids[i];
            bool final_elem = i + 1 == e->kids.size();
            if (elem->kind == ExprKind::Assign) {
                last = evalAssign(elem, cur, &cur);
            } else if (final_elem) {
                last = evalRef(elem, cur);
            } else {
                // Value dropped, but effects (and register reads)
                // still happen.
                last = eval(elem, cur);
            }
        }
        return last;
    }

    /**
     * Assignment: to a local name (binds; env_out updated) or to a
     * register reference (records a write whose value-ready cycle is
     * the cycle the right-hand side was computed in, per §3.1).
     */
    ValueP
    evalAssign(const ExprP &e, const EnvP &env, EnvP *env_out)
    {
        const ExprP &lhs = e->kids[0];
        ValueP rhs = eval(e->kids[1], env);

        // Local binding?
        if (lhs->kind == ExprKind::Name &&
            !Env::lookup(env, lhs->name) &&
            fieldFromName(lhs->name) == Field::None &&
            !builtinOps.count(lhs->name)) {
            if (env_out)
                *env_out = Env::bind(env, lhs->name,
                                     [rhs](Eval &) { return rhs; });
            return rhs;
        }

        ValueP ref = evalRef(lhs, env);
        if (ref->kind != VKind::RegRef)
            fatal("sadl: line %d: assignment target is not a register",
                  e->line);
        RegAccess acc;
        acc.file = static_cast<uint16_t>(ref->fileIdx);
        acc.field = ref->field;
        acc.constIdx = static_cast<uint16_t>(ref->constIdx);
        acc.pair = ref->pair;
        acc.cycle = static_cast<uint8_t>(cycle);
        acc.valueReady = static_cast<uint8_t>(
            rhs->kind == VKind::Sym ? rhs->cycle : cycle);
        acc.isWrite = true;
        timing.writes.push_back(acc);
        note(cycle);
        return rhs;
    }

    ValueP
    evalZip(const ExprP &e, const EnvP &env)
    {
        ValueP left = evalRef(e->kids[0], env);
        ValueP right = evalRef(e->kids[1], env);
        if (right->kind != VKind::ListV)
            fatal("sadl: line %d: right side of '@' must be a list",
                  e->line);
        auto out = std::make_shared<Value>();
        out->kind = VKind::ListV;
        int line = e->line;
        for (size_t k = 0; k < right->elems.size(); ++k) {
            Thunk rt = right->elems[k];
            if (left->kind == VKind::ListV) {
                if (left->elems.size() != right->elems.size())
                    fatal("sadl: line %d: '@' list lengths differ "
                          "(%zu vs %zu)", e->line, left->elems.size(),
                          right->elems.size());
                Thunk lt = left->elems[k];
                out->elems.push_back([lt, rt, line](Eval &ev) {
                    ValueP f = ev.coerce(lt(ev));
                    ValueP x = rt(ev);
                    return ev.apply(f, x, line);
                });
            } else {
                ValueP f = left;
                out->elems.push_back([f, rt, line](Eval &ev) {
                    return ev.apply(f, rt(ev), line);
                });
            }
        }
        return out;
    }

    ValueP
    evalIndex(const ExprP &e, const EnvP &env)
    {
        ValueP base = evalRef(e->kids[0], env);
        ValueP idx = evalRef(e->kids[1], env);
        switch (base->kind) {
          case VKind::RegFile: {
            auto v = std::make_shared<Value>();
            v->kind = VKind::RegRef;
            v->fileIdx = base->fileIdx;
            if (idx->kind == VKind::FieldRef) {
                v->field = idx->field;
            } else if (idx->kind == VKind::Num) {
                v->field = Field::None;
                v->constIdx = static_cast<int>(idx->num);
            } else {
                fatal("sadl: line %d: register index must be a field "
                      "or constant", e->line);
            }
            return v;
          }
          case VKind::AliasRef: {
            const Decl *a = base->alias;
            ValueP captured = idx;
            EnvP inner = Env::bind(
                base->aliasEnv, a->param,
                [captured](Eval &) { return captured; });
            ValueP r = evalRef(a->body, inner);
            if (r->kind == VKind::RegRef) {
                auto v = std::make_shared<Value>(*r);
                unsigned fbits = desc.regFiles[r->fileIdx].bits;
                v->pair = a->typeBits == 2 * fbits;
                return v;
            }
            return r;
          }
          case VKind::ListV: {
            if (idx->kind != VKind::Num)
                fatal("sadl: line %d: list index must be a constant",
                      e->line);
            size_t k = static_cast<size_t>(idx->num);
            if (k >= base->elems.size())
                fatal("sadl: line %d: list index out of range",
                      e->line);
            return base->elems[k](*this);
          }
          default:
            fatal("sadl: line %d: value cannot be indexed", e->line);
        }
    }

    ValueP
    evalCmd(const ExprP &e)
    {
        if (e->kind == ExprKind::CmdD) {
            cycle += e->hasNumber ? static_cast<int>(e->number) : 1;
            return unitValue;
        }
        int unit = desc.unitIndex(e->name);
        if (unit < 0)
            fatal("sadl: line %d: unknown unit '%s'", e->line,
                  e->name.c_str());
        int num = e->hasNumber ? static_cast<int>(e->number) : 1;
        switch (e->kind) {
          case ExprKind::CmdA:
            acquire(unit, num, cycle);
            break;
          case ExprKind::CmdR:
            release(unit, num, cycle);
            break;
          case ExprKind::CmdAR:
            acquire(unit, num, cycle);
            release(unit, num, cycle + static_cast<int>(e->number2));
            break;
          default:
            panic("evalCmd: not a command");
        }
        return unitValue;
    }
};

/** Builds the description: declaration processing + fork handling. */
class Analyzer
{
  public:
    Description
    run(const std::string &source)
    {
        Program prog = parse(source);
        for (const Decl &d : prog.decls)
            process(d);
        assignGroups();
        return std::move(desc);
    }

  private:
    Description desc;
    EnvP topEnv;

    void
    process(const Decl &d)
    {
        switch (d.kind) {
          case DeclKind::Unit:
            for (size_t i = 0; i < d.names.size(); ++i) {
                if (desc.unitIndex(d.names[i]) >= 0)
                    fatal("sadl: line %d: duplicate unit '%s'", d.line,
                          d.names[i].c_str());
                desc.units.push_back(
                    UnitDecl{d.names[i],
                             static_cast<unsigned>(d.counts[i])});
            }
            break;

          case DeclKind::Register: {
            desc.regFiles.push_back(
                RegFileDecl{d.names[0],
                            static_cast<unsigned>(d.typeBits),
                            static_cast<unsigned>(d.arraySize)});
            int idx = static_cast<int>(desc.regFiles.size() - 1);
            topEnv = Env::bind(topEnv, d.names[0], [idx](Eval &) {
                auto v = mkv(VKind::RegFile);
                const_cast<Value &>(*v).fileIdx = idx;
                return v;
            });
            break;
          }

          case DeclKind::Alias: {
            // Copy the declaration so the thunk owns stable storage.
            auto decl = std::make_shared<Decl>(d);
            EnvP captured = topEnv;
            topEnv = Env::bind(topEnv, d.names[0],
                               [decl, captured](Eval &) {
                auto v = mkv(VKind::AliasRef);
                const_cast<Value &>(*v).alias = decl.get();
                const_cast<Value &>(*v).aliasEnv = captured;
                return v;
            });
            keepAlive.push_back(decl);
            break;
          }

          case DeclKind::Val: {
            // Call-by-name macros: each reference re-evaluates the
            // body, so timing effects land in the referencing sem.
            EnvP captured = topEnv;
            if (d.names.size() == 1) {
                ExprP body = d.body;
                topEnv = Env::bind(topEnv, d.names[0],
                                   [body, captured](Eval &ev) {
                    return ev.evalRef(body, captured);
                });
            } else {
                ExprP body = d.body;
                for (size_t k = 0; k < d.names.size(); ++k) {
                    int line = d.line;
                    topEnv = Env::bind(topEnv, d.names[k],
                                       [body, captured, k, line]
                                       (Eval &ev) {
                        ValueP v = ev.evalRef(body, captured);
                        if (v->kind != VKind::ListV)
                            fatal("sadl: line %d: val binds a list of "
                                  "names but body is not a list",
                                  line);
                        if (k >= v->elems.size())
                            fatal("sadl: line %d: val name list longer "
                                  "than body list", line);
                        return v->elems[k](ev);
                    });
                }
            }
            break;
          }

          case DeclKind::Sem:
            for (size_t k = 0; k < d.names.size(); ++k)
                evalSem(d, k);
            break;
        }
    }

    /** Evaluate one sem binding, enumerating all condition forks. */
    void
    evalSem(const Decl &d, size_t k)
    {
        std::deque<std::vector<bool>> queue;
        queue.push_back({});
        int guard = 0;
        while (!queue.empty()) {
            if (++guard > 64)
                fatal("sadl: line %d: too many condition variants for "
                      "'%s'", d.line, d.names[k].c_str());
            std::vector<bool> preset = std::move(queue.front());
            queue.pop_front();

            Eval ev(desc, d.names[k], preset);
            ValueP v = ev.evalRef(d.body, topEnv);
            if (d.names.size() > 1 || v->kind == VKind::ListV) {
                if (v->kind != VKind::ListV)
                    fatal("sadl: line %d: sem binds %zu names but body "
                          "is not a list", d.line, d.names.size());
                if (k >= v->elems.size())
                    fatal("sadl: line %d: sem name list longer than "
                          "body list", d.line);
                v = v->elems[k](ev);
            }
            ev.coerce(v);
            finishTiming(ev, d);

            // Enqueue the not-taken side of every decision this run
            // made beyond its preset.
            for (size_t j = preset.size(); j < ev.tape.size(); ++j) {
                std::vector<bool> alt(ev.tape.begin(),
                                      ev.tape.begin() + j);
                alt.push_back(!ev.tape[j]);
                queue.push_back(std::move(alt));
            }
        }
    }

    void
    finishTiming(Eval &ev, const Decl &d)
    {
        Timing &t = ev.timing;
        int lat = std::max(ev.cycle, ev.maxEventCycle) + 1;
        t.latency = static_cast<unsigned>(lat);
        for (const auto &[unit, bal] : ev.balance) {
            if (bal != 0)
                fatal("sadl: line %d: '%s': unit '%s' acquired and "
                      "released unevenly (%ld left held)", d.line,
                      t.mnemonic.c_str(),
                      desc.units[unit].name.c_str(), bal);
        }
        // Normalize table sizes: acquire indexed 0..latency-1,
        // release 0..latency (events past that are clamped into the
        // final slot so resources are freed when the instruction
        // retires at the latest).
        if (t.acquire.size() < static_cast<size_t>(lat))
            t.acquire.resize(lat);
        std::vector<std::vector<UnitEvent>> rel(lat + 1);
        for (size_t c = 0; c < t.release.size(); ++c) {
            size_t slot = std::min(c, static_cast<size_t>(lat));
            for (const UnitEvent &e : t.release[c])
                rel[slot].push_back(e);
        }
        t.release = std::move(rel);
        desc.timings.push_back(std::move(t));
    }

    void
    assignGroups()
    {
        std::vector<const Timing *> reps;
        for (Timing &t : desc.timings) {
            bool found = false;
            for (size_t g = 0; g < reps.size(); ++g) {
                if (t.sameShape(*reps[g])) {
                    t.group = static_cast<unsigned>(g);
                    found = true;
                    break;
                }
            }
            if (!found) {
                t.group = static_cast<unsigned>(reps.size());
                reps.push_back(&t);
            }
        }
        desc.numGroups = static_cast<unsigned>(reps.size());
    }

    std::vector<std::shared_ptr<Decl>> keepAlive;
};

} // namespace

Description
analyze(const std::string &source)
{
    return Analyzer().run(source);
}

} // namespace eel::sadl
