/**
 * @file
 * Recursive-descent parser for SADL.
 */

#ifndef EEL_SADL_PARSER_HH
#define EEL_SADL_PARSER_HH

#include <string>

#include "src/sadl/ast.hh"

namespace eel::sadl {

/** Parse SADL source text into a Program. Throws FatalError. */
Program parse(const std::string &source);

} // namespace eel::sadl

#endif // EEL_SADL_PARSER_HH
