#include "src/sadl/parser.hh"

#include "src/sadl/lexer.hh"
#include "src/support/logging.hh"

namespace eel::sadl {

namespace {

/**
 * Expression grammar, lowest to highest precedence:
 *
 *   expr     := lambda | seq
 *   lambda   := '\' ident '.' expr
 *   seq      := element (',' element)*
 *   element  := zip [':=' zip]        (lhs must be a name or index)
 *   zip      := cond ('@' cond)*
 *   cond     := eq ['?' cond ':' cond]
 *   eq       := app ['=' app]
 *   app      := postfix+
 *   postfix  := primary ('[' expr ']')*
 *   primary  := number | ident | opident | '#'field
 *             | '(' ')' | '(' expr ')' | '[' postfix* ']'
 *             | 'A' unit [num] | 'R' unit [num]
 *             | 'AR' unit [num [num]] | 'D' [num]
 */
class Parser
{
  public:
    explicit Parser(const std::string &src) : toks(tokenize(src)) {}

    Program
    parseProgram()
    {
        Program prog;
        while (peek().kind != Tok::End)
            prog.decls.push_back(parseDecl());
        return prog;
    }

  private:
    std::vector<Token> toks;
    size_t pos = 0;

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        return i < toks.size() ? toks[i] : toks.back();
    }
    Token
    next()
    {
        Token t = peek();
        if (pos < toks.size() - 1)
            ++pos;
        return t;
    }
    Token
    expect(Tok kind, const char *what)
    {
        if (peek().kind != kind)
            fatal("sadl: line %d: expected %s, found %s", peek().line,
                  what, tokenName(peek()).c_str());
        return next();
    }

    static ExprP
    node(ExprKind kind, int line)
    {
        auto e = std::make_shared<Expr>();
        e->kind = kind;
        e->line = line;
        return e;
    }
    static Expr &mut(const ExprP &e) { return const_cast<Expr &>(*e); }

    // --- Declarations ---------------------------------------------------

    Decl
    parseDecl()
    {
        switch (peek().kind) {
          case Tok::KwUnit: return parseUnit();
          case Tok::KwVal: return parseValOrSem(DeclKind::Val);
          case Tok::KwSem: return parseValOrSem(DeclKind::Sem);
          case Tok::KwAlias: return parseAlias();
          case Tok::KwRegister: return parseRegister();
          default:
            fatal("sadl: line %d: expected a declaration, found %s",
                  peek().line, tokenName(peek()).c_str());
        }
    }

    Decl
    parseUnit()
    {
        Decl d;
        d.kind = DeclKind::Unit;
        d.line = next().line;  // 'unit'
        for (;;) {
            Token name = expect(Tok::Ident, "unit name");
            Token count = expect(Tok::Number, "unit count");
            d.names.push_back(name.text);
            d.counts.push_back(count.value);
            if (peek().kind != Tok::Comma)
                break;
            next();
        }
        return d;
    }

    Decl
    parseValOrSem(DeclKind kind)
    {
        Decl d;
        d.kind = kind;
        d.line = next().line;  // 'val' or 'sem'
        if (peek().kind == Tok::LBracket) {
            next();
            while (peek().kind != Tok::RBracket) {
                if (peek().kind == Tok::Ident ||
                    peek().kind == Tok::OpIdent)
                    d.names.push_back(next().text);
                else
                    fatal("sadl: line %d: expected name in binding "
                          "list, found %s", peek().line,
                          tokenName(peek()).c_str());
            }
            next();  // ']'
        } else if (peek().kind == Tok::Ident ||
                   peek().kind == Tok::OpIdent) {
            d.names.push_back(next().text);
        } else {
            fatal("sadl: line %d: expected name after val/sem",
                  peek().line);
        }
        expect(Tok::KwIs, "'is'");
        d.body = parseExpr();
        return d;
    }

    /** Parse "type{bits}" and return bits. */
    long
    parseType()
    {
        expect(Tok::Ident, "type name");
        expect(Tok::LBrace, "'{'");
        Token bits = expect(Tok::Number, "bit width");
        expect(Tok::RBrace, "'}'");
        return bits.value;
    }

    Decl
    parseAlias()
    {
        Decl d;
        d.kind = DeclKind::Alias;
        d.line = next().line;  // 'alias'
        d.typeBits = parseType();
        d.names.push_back(expect(Tok::Ident, "alias name").text);
        expect(Tok::LBracket, "'['");
        d.param = expect(Tok::Ident, "index variable").text;
        expect(Tok::RBracket, "']'");
        expect(Tok::KwIs, "'is'");
        d.body = parseExpr();
        return d;
    }

    Decl
    parseRegister()
    {
        Decl d;
        d.kind = DeclKind::Register;
        d.line = next().line;  // 'register'
        d.typeBits = parseType();
        d.names.push_back(expect(Tok::Ident, "register file name").text);
        expect(Tok::LBracket, "'['");
        d.arraySize = expect(Tok::Number, "register count").value;
        expect(Tok::RBracket, "']'");
        return d;
    }

    // --- Expressions ----------------------------------------------------

    ExprP
    parseExpr()
    {
        if (peek().kind == Tok::Lambda)
            return parseLambda();
        return parseSeq();
    }

    ExprP
    parseLambda()
    {
        int line = next().line;  // '\'
        Token param = expect(Tok::Ident, "lambda parameter");
        expect(Tok::Dot, "'.'");
        ExprP e = node(ExprKind::Lambda, line);
        mut(e).name = param.text;
        mut(e).kids.push_back(parseExpr());
        return e;
    }

    ExprP
    parseSeq()
    {
        int line = peek().line;
        std::vector<ExprP> elems;
        elems.push_back(parseElement());
        while (peek().kind == Tok::Comma) {
            next();
            elems.push_back(parseElement());
        }
        if (elems.size() == 1)
            return elems[0];
        ExprP e = node(ExprKind::Seq, line);
        mut(e).kids = std::move(elems);
        return e;
    }

    ExprP
    parseElement()
    {
        if (peek().kind == Tok::Lambda)
            return parseLambda();
        ExprP lhs = parseZip();
        if (peek().kind == Tok::Assign) {
            int line = next().line;
            if (lhs->kind != ExprKind::Name &&
                lhs->kind != ExprKind::Index)
                fatal("sadl: line %d: left side of ':=' must be a name "
                      "or register reference", line);
            ExprP rhs = parseZip();
            ExprP e = node(ExprKind::Assign, line);
            mut(e).kids = {lhs, rhs};
            return e;
        }
        return lhs;
    }

    ExprP
    parseZip()
    {
        ExprP left = parseCond();
        while (peek().kind == Tok::At) {
            int line = next().line;
            ExprP right = parseCond();
            ExprP e = node(ExprKind::Zip, line);
            mut(e).kids = {left, right};
            left = e;
        }
        return left;
    }

    ExprP
    parseCond()
    {
        ExprP test = parseEq();
        if (peek().kind != Tok::Question)
            return test;
        int line = next().line;
        ExprP then_arm = parseCond();
        expect(Tok::Colon, "':'");
        ExprP else_arm = parseCond();
        ExprP e = node(ExprKind::CondExpr, line);
        mut(e).kids = {test, then_arm, else_arm};
        return e;
    }

    ExprP
    parseEq()
    {
        ExprP left = parseApp();
        if (peek().kind != Tok::Equals)
            return left;
        int line = next().line;
        ExprP right = parseApp();
        ExprP e = node(ExprKind::EqTest, line);
        mut(e).kids = {left, right};
        return e;
    }

    bool
    startsPrimary() const
    {
        switch (peek().kind) {
          case Tok::Number: case Tok::Ident: case Tok::OpIdent:
          case Tok::Immediate: case Tok::LParen: case Tok::LBracket:
            return true;
          default:
            return false;
        }
    }

    /**
     * Contextual command recognition: an identifier A/R/AR spells a
     * timing command when the next token is a unit name; D spells a
     * pipeline advance when followed by a delay count, a separator,
     * or anything that cannot continue an application.
     */
    bool
    isCommandHere() const
    {
        const std::string &w = peek().text;
        if (peek().kind != Tok::Ident)
            return false;
        if (w == "A" || w == "R" || w == "AR")
            return peek(1).kind == Tok::Ident;
        if (w == "D")
            return peek(1).kind != Tok::LBracket;
        return false;
    }

    ExprP
    parseApp()
    {
        ExprP f = parsePostfix();
        // Timing commands take their arguments in their own syntax and
        // never act as curried functions.
        if (f->kind == ExprKind::CmdA || f->kind == ExprKind::CmdR ||
            f->kind == ExprKind::CmdAR || f->kind == ExprKind::CmdD)
            return f;
        while (startsPrimary()) {
            ExprP arg = parsePostfix();
            ExprP e = node(ExprKind::Apply, f->line);
            mut(e).kids = {f, arg};
            f = e;
        }
        return f;
    }

    ExprP
    parsePostfix()
    {
        ExprP base = parsePrimary();
        while (peek().kind == Tok::LBracket &&
               (base->kind == ExprKind::Name ||
                base->kind == ExprKind::Index)) {
            int line = next().line;
            ExprP idx = parseExpr();
            expect(Tok::RBracket, "']'");
            ExprP e = node(ExprKind::Index, line);
            mut(e).kids = {base, idx};
            base = e;
        }
        return base;
    }

    ExprP
    parseCommand()
    {
        Token t = next();  // A / R / AR / D
        if (t.text == "D") {
            ExprP e = node(ExprKind::CmdD, t.line);
            if (peek().kind == Tok::Number) {
                mut(e).number = next().value;
                mut(e).hasNumber = true;
            }
            return e;
        }
        ExprKind kind = t.text == "A" ? ExprKind::CmdA
                      : t.text == "R" ? ExprKind::CmdR
                                      : ExprKind::CmdAR;
        ExprP e = node(kind, t.line);
        mut(e).name = expect(Tok::Ident, "unit name").text;
        if (peek().kind == Tok::Number) {
            mut(e).number = next().value;
            mut(e).hasNumber = true;
            if (kind == ExprKind::CmdAR && peek().kind == Tok::Number)
                mut(e).number2 = next().value;
        }
        return e;
    }

    ExprP
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::Number: {
            ExprP e = node(ExprKind::Number, t.line);
            mut(e).number = next().value;
            return e;
          }
          case Tok::Ident:
            if (isCommandHere())
                return parseCommand();
            [[fallthrough]];
          case Tok::OpIdent: {
            ExprP e = node(ExprKind::Name, t.line);
            mut(e).name = next().text;
            return e;
          }
          case Tok::Immediate: {
            ExprP e = node(ExprKind::Immediate, t.line);
            mut(e).name = next().text;
            return e;
          }
          case Tok::LParen: {
            next();
            if (peek().kind == Tok::RParen) {
                next();
                return node(ExprKind::UnitVal, t.line);
            }
            ExprP inner = parseExpr();
            expect(Tok::RParen, "')'");
            return inner;
          }
          case Tok::LBracket: {
            next();
            ExprP e = node(ExprKind::List, t.line);
            while (peek().kind != Tok::RBracket) {
                if (!startsPrimary())
                    fatal("sadl: line %d: expected list element, "
                          "found %s", peek().line,
                          tokenName(peek()).c_str());
                mut(e).kids.push_back(parsePostfix());
            }
            next();  // ']'
            return e;
          }
          default:
            fatal("sadl: line %d: expected an expression, found %s",
                  t.line, tokenName(t).c_str());
        }
    }
};

} // namespace

Program
parse(const std::string &source)
{
    return Parser(source).parseProgram();
}

} // namespace eel::sadl
